// Crash-recovery tests: injected crashes (FaultAction::kCrash) at every
// injection point, followed by restart-resume through Database::Recover.
//
// The contract under test (DESIGN.md §10): a crashed-then-recovered query
// returns results bit-identical to an uncrashed run in both row and
// batched modes, leaks nothing (no temp tables, no lost disk pages, no
// stale journal records), and any durable state that fails validation —
// corrupt journal record, corrupt temp page, row-count mismatch — degrades
// to a clean from-scratch re-run with a RecoveryFallback trace record.
// Recovery may sacrifice saved work; it never returns a wrong answer.

#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "engine/database.h"
#include "gtest/gtest.h"
#include "reopt/query_journal.h"
#include "test_util.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

using testing_util::Canon;

// Eager-gate options under which TPC-D Q5 on a stale catalog reliably
// accepts a plan switch (same setup as fault_test's sweep), so the
// journal.append / reopt.* points sit on the executed path.
ReoptOptions EagerGate(size_t batch_size = 1) {
  ReoptOptions o;
  o.mode = ReoptMode::kFull;
  o.theta2 = -1.0;  // any degradation (even none) passes Eq. 2
  o.theta1 = 1e9;
  o.batch_size = batch_size;
  return o;
}

std::unique_ptr<Database> MakeTpcdDb() {
  DatabaseOptions opts;
  opts.buffer_pool_pages = 128;
  opts.query_mem_pages = 48;
  auto db = std::make_unique<Database>(opts);
  tpcd::TpcdOptions gen;
  gen.scale_factor = 0.003;
  gen.update_fraction = 1.0;  // stale catalog: estimates are off
  EXPECT_TRUE(tpcd::Load(db.get(), gen).ok());
  return db;
}

void ExpectNoTempTables(Database* db) {
  for (int i = 1; i <= 16; ++i)
    EXPECT_FALSE(db->catalog()->Exists("__temp" + std::to_string(i)))
        << "__temp" << i << " leaked";
}

/// Runs Q5 once, crashing at `point` (crash:nth:1); returns the kCrashed
/// status. EXPECTs that the crash actually fired and latched.
Status CrashOnce(Database* db, const char* point, const ReoptOptions& opts) {
  EXPECT_TRUE(
      db->faults()->Configure(std::string(point) + "=crash:nth:1").ok());
  Result<QueryResult> r = db->ExecuteWith(tpcd::Q5Sql(), opts);
  EXPECT_FALSE(r.ok()) << point << ": crash did not fire";
  EXPECT_TRUE(db->faults()->crash_pending()) << point;
  db->faults()->Reset();  // the armed schedule dies with the "process"
  return r.ok() ? Status::OK() : r.status();
}

// ---------------------------------------------------------------------------
// The crash sweep: every injection point a running query can hit, in both
// row and batched modes. After the crash, Recover must produce results
// bit-identical to the uncrashed reference and restore every resource.

struct CrashCase {
  const char* point;
  size_t batch_size;
};

std::string CrashName(const ::testing::TestParamInfo<CrashCase>& info) {
  std::string name = info.param.point;
  for (char& c : name)
    if (c == '.') c = '_';
  name += info.param.batch_size == 1 ? "_row" : "_batched";
  return name;
}

class CrashSweep : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashSweep, RecoverMatchesUncrashedRun) {
  const CrashCase& p = GetParam();
  std::unique_ptr<Database> db = MakeTpcdDb();
  const ReoptOptions eager = EagerGate(p.batch_size);

  // Uncrashed oracle: proves the query switches plans (so the reopt.*,
  // journal.* points are on-path) and pins the expected rows and the
  // steady-state disk footprint.
  Result<QueryResult> clean = db->ExecuteWith(tpcd::Q5Sql(), eager);
  REOPTDB_ASSERT_OK(clean.status());
  ASSERT_GT(clean->report.plans_switched, 0) << "sweep needs a plan switch";
  const std::vector<std::string> reference = Canon(clean->rows);
  EXPECT_TRUE(db->journal()->empty()) << "clean run must retire its records";
  const size_t baseline_pages = db->disk()->live_pages();

  Status crash = CrashOnce(db.get(), p.point, eager);
  ASSERT_EQ(crash.code(), StatusCode::kCrashed) << crash.ToString();

  // Restart-resume. Whether this resumes from a journaled stage or re-runs
  // from scratch depends on where the crash landed relative to the point
  // of no return; both paths must converge on the oracle's rows.
  Result<QueryResult> rec = db->Recover(tpcd::Q5Sql(), eager);
  REOPTDB_ASSERT_OK(rec.status());
  EXPECT_EQ(Canon(rec->rows), reference) << p.point;
  ASSERT_EQ(rec->report.trace.recoveries.size(), 1u) << p.point;
  EXPECT_TRUE(rec->report.trace.recovery_fallbacks.empty())
      << "intact durable state must not be rejected: "
      << rec->report.trace.recovery_fallbacks[0].reason;

  // Nothing leaks: temp tables collected, every temp/scratch page freed,
  // journal retired, crash latch cleared.
  ExpectNoTempTables(db.get());
  EXPECT_EQ(db->disk()->live_pages(), baseline_pages) << p.point;
  EXPECT_TRUE(db->journal()->empty()) << p.point;
  EXPECT_FALSE(db->faults()->crash_pending());

  // The engine is fully usable after recovery.
  Result<QueryResult> again = db->ExecuteWith(tpcd::Q5Sql(), eager);
  REOPTDB_ASSERT_OK(again.status());
  EXPECT_EQ(Canon(again->rows), reference);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoints, CrashSweep,
    ::testing::Values(CrashCase{faults::kStorageRead, 1},
                      CrashCase{faults::kStorageRead, 1024},
                      CrashCase{faults::kStorageWrite, 1},
                      CrashCase{faults::kStorageWrite, 1024},
                      CrashCase{faults::kStorageFree, 1},
                      CrashCase{faults::kStorageFree, 1024},
                      CrashCase{faults::kMemoryGrant, 1},
                      CrashCase{faults::kMemoryGrant, 1024},
                      CrashCase{faults::kReoptOptimize, 1},
                      CrashCase{faults::kReoptOptimize, 1024},
                      CrashCase{faults::kReoptScia, 1},
                      CrashCase{faults::kReoptScia, 1024},
                      CrashCase{faults::kReoptMaterialize, 1},
                      CrashCase{faults::kReoptMaterialize, 1024},
                      CrashCase{faults::kReoptPostSwitch, 1},
                      CrashCase{faults::kReoptPostSwitch, 1024},
                      CrashCase{faults::kJournalAppend, 1},
                      CrashCase{faults::kJournalAppend, 1024}),
    CrashName);

// ---------------------------------------------------------------------------
// Resume semantics: a crash after the journal commit must actually resume
// (not re-run), skipping the journaled work.

TEST(RecoveryTest, ResumesFromJournaledStage) {
  std::unique_ptr<Database> db = MakeTpcdDb();
  const ReoptOptions eager = EagerGate();
  Result<QueryResult> clean = db->ExecuteWith(tpcd::Q5Sql(), eager);
  REOPTDB_ASSERT_OK(clean.status());
  ASSERT_GT(clean->report.plans_switched, 0);

  // reopt.post_switch is checked after the journal append, so the stage-1
  // record is committed before the crash.
  Status crash = CrashOnce(db.get(), faults::kReoptPostSwitch, eager);
  ASSERT_EQ(crash.code(), StatusCode::kCrashed);
  EXPECT_EQ(db->journal()->record_count(), 1u)
      << "the committed stage must survive the crash";

  Result<QueryResult> rec = db->Recover(tpcd::Q5Sql(), eager);
  REOPTDB_ASSERT_OK(rec.status());
  EXPECT_EQ(Canon(rec->rows), Canon(clean->rows));

  ASSERT_EQ(rec->report.trace.recoveries.size(), 1u);
  const RecoveryEvent& ev = rec->report.trace.recoveries[0];
  EXPECT_TRUE(ev.resumed);
  EXPECT_EQ(ev.stage, 1);
  EXPECT_FALSE(ev.temp_table.empty());
  EXPECT_GT(ev.rows, 0u);  // the rebound temp was validated row by row
  EXPECT_GT(ev.skipped_work_ms, 0.0);

  // The resume surfaces in EXPLAIN ANALYZE's event stream.
  bool announced = false;
  for (const std::string& e : rec->report.events)
    announced = announced ||
                e.find("resumed from stage 1") != std::string::npos;
  EXPECT_TRUE(announced) << "recovery must announce the resumed stage";
}

TEST(RecoveryTest, RecoverWithoutPriorCrashRunsFromScratch) {
  std::unique_ptr<Database> db = MakeTpcdDb();
  const ReoptOptions eager = EagerGate();
  Result<QueryResult> clean = db->ExecuteWith(tpcd::Q5Sql(), eager);
  REOPTDB_ASSERT_OK(clean.status());

  // No crash happened; the journal is empty. Recover degenerates to a
  // normal execution plus a resumed=false event — never an error.
  Result<QueryResult> rec = db->Recover(tpcd::Q5Sql(), eager);
  REOPTDB_ASSERT_OK(rec.status());
  EXPECT_EQ(Canon(rec->rows), Canon(clean->rows));
  ASSERT_EQ(rec->report.trace.recoveries.size(), 1u);
  EXPECT_FALSE(rec->report.trace.recoveries[0].resumed);
  EXPECT_TRUE(rec->report.trace.recovery_fallbacks.empty());
}

// ---------------------------------------------------------------------------
// Crash during recovery itself: the load point re-crashes, a second
// restart still succeeds from the same journal records. recovery.load only
// fires inside Recover, so it cannot ride the CrashSweep; both execution
// modes are covered here instead.

TEST(RecoveryTest, CrashDuringRecoveryLoadThenRecoverAgain) {
  for (size_t batch_size : {size_t{1}, size_t{1024}}) {
    SCOPED_TRACE("batch_size=" + std::to_string(batch_size));
    std::unique_ptr<Database> db = MakeTpcdDb();
    const ReoptOptions eager = EagerGate(batch_size);
    Result<QueryResult> clean = db->ExecuteWith(tpcd::Q5Sql(), eager);
    REOPTDB_ASSERT_OK(clean.status());
    const size_t baseline_pages = db->disk()->live_pages();

    Status crash = CrashOnce(db.get(), faults::kReoptPostSwitch, eager);
    ASSERT_EQ(crash.code(), StatusCode::kCrashed);

    // First restart dies reading the journal.
    REOPTDB_ASSERT_OK(db->faults()->Configure("recovery.load=crash:nth:1"));
    Result<QueryResult> rec1 = db->Recover(tpcd::Q5Sql(), eager);
    ASSERT_FALSE(rec1.ok());
    EXPECT_EQ(rec1.status().code(), StatusCode::kCrashed);
    db->faults()->Reset();

    // The re-crash must not have consumed the journal or the temp pages: the
    // second restart resumes normally.
    EXPECT_EQ(db->journal()->record_count(), 1u);
    Result<QueryResult> rec2 = db->Recover(tpcd::Q5Sql(), eager);
    REOPTDB_ASSERT_OK(rec2.status());
    EXPECT_EQ(Canon(rec2->rows), Canon(clean->rows));
    ASSERT_EQ(rec2->report.trace.recoveries.size(), 1u);
    EXPECT_TRUE(rec2->report.trace.recoveries[0].resumed);
    ExpectNoTempTables(db.get());
    EXPECT_EQ(db->disk()->live_pages(), baseline_pages);
    EXPECT_TRUE(db->journal()->empty());
  }
}

// ---------------------------------------------------------------------------
// Validation failures: untrusted durable state falls back to a clean
// from-scratch re-run, recorded as a RecoveryFallback — never a wrong
// answer, never an error.

TEST(RecoveryTest, CorruptJournalRecordFallsBackCleanly) {
  std::unique_ptr<Database> db = MakeTpcdDb();
  const ReoptOptions eager = EagerGate();
  Result<QueryResult> clean = db->ExecuteWith(tpcd::Q5Sql(), eager);
  REOPTDB_ASSERT_OK(clean.status());
  const size_t baseline_pages = db->disk()->live_pages();

  Status crash = CrashOnce(db.get(), faults::kReoptPostSwitch, eager);
  ASSERT_EQ(crash.code(), StatusCode::kCrashed);
  ASSERT_EQ(db->journal()->record_count(), 1u);
  db->journal()->CorruptRecordForTesting(0);  // on-media bit rot

  Result<QueryResult> rec = db->Recover(tpcd::Q5Sql(), eager);
  REOPTDB_ASSERT_OK(rec.status());
  EXPECT_EQ(Canon(rec->rows), Canon(clean->rows));
  ASSERT_EQ(rec->report.trace.recovery_fallbacks.size(), 1u);
  EXPECT_NE(rec->report.trace.recovery_fallbacks[0].reason.find("journal"),
            std::string::npos);
  ASSERT_EQ(rec->report.trace.recoveries.size(), 1u);
  EXPECT_FALSE(rec->report.trace.recoveries[0].resumed);

  // The fallback garbage-collected everything the crashed run left.
  ExpectNoTempTables(db.get());
  EXPECT_EQ(db->disk()->live_pages(), baseline_pages);
  EXPECT_TRUE(db->journal()->empty());
}

TEST(RecoveryTest, CorruptTempTablePageFallsBackCleanly) {
  std::unique_ptr<Database> db = MakeTpcdDb();
  const ReoptOptions eager = EagerGate();
  Result<QueryResult> clean = db->ExecuteWith(tpcd::Q5Sql(), eager);
  REOPTDB_ASSERT_OK(clean.status());
  const size_t baseline_pages = db->disk()->live_pages();

  Status crash = CrashOnce(db.get(), faults::kReoptPostSwitch, eager);
  ASSERT_EQ(crash.code(), StatusCode::kCrashed);

  // Corrupt one of the journaled temp-table pages on the simulated disk.
  Result<std::vector<JournalStage>> records = db->journal()->Load(nullptr);
  REOPTDB_ASSERT_OK(records.status());
  ASSERT_EQ(records->size(), 1u);
  ASSERT_FALSE(records.value()[0].temps.empty());
  const TempSnapshot& snap = records.value()[0].temps[0];
  ASSERT_FALSE(snap.page_ids.empty());
  REOPTDB_ASSERT_OK(db->disk()->CorruptPageForTesting(snap.page_ids[0]));

  // Validation (the page-checksummed read, or the content hash over
  // whatever still deserializes) must reject the snapshot; recovery falls
  // back and still returns the right rows.
  Result<QueryResult> rec = db->Recover(tpcd::Q5Sql(), eager);
  REOPTDB_ASSERT_OK(rec.status());
  EXPECT_EQ(Canon(rec->rows), Canon(clean->rows));
  ASSERT_EQ(rec->report.trace.recovery_fallbacks.size(), 1u);
  ASSERT_EQ(rec->report.trace.recoveries.size(), 1u);
  EXPECT_FALSE(rec->report.trace.recoveries[0].resumed);

  ExpectNoTempTables(db.get());
  EXPECT_EQ(db->disk()->live_pages(), baseline_pages);
  EXPECT_TRUE(db->journal()->empty());
}

// ---------------------------------------------------------------------------
// REOPTDB_CRASH_SCHEDULE: the env-var schedule arms crash-action triggers
// (the `crash:` prefix is implied) on a fresh Database.

TEST(RecoveryTest, CrashScheduleEnvVarArmsCrashTriggers) {
  ::setenv("REOPTDB_CRASH_SCHEDULE", "reopt.post_switch=nth:1", 1);
  std::unique_ptr<Database> db = MakeTpcdDb();
  ::unsetenv("REOPTDB_CRASH_SCHEDULE");

  const ReoptOptions eager = EagerGate();
  Result<QueryResult> r = db->ExecuteWith(tpcd::Q5Sql(), eager);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCrashed);
  EXPECT_TRUE(db->faults()->crash_pending());

  db->faults()->Reset();
  Result<QueryResult> rec = db->Recover(tpcd::Q5Sql(), eager);
  REOPTDB_ASSERT_OK(rec.status());
  ASSERT_EQ(rec->report.trace.recoveries.size(), 1u);
  EXPECT_TRUE(rec->report.trace.recoveries[0].resumed);
}

}  // namespace
}  // namespace reoptdb
