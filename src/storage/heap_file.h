// Heap file: an unordered collection of variable-length tuples in slotted
// pages.
//
// I/O discipline (drives the simulated cost accounting):
//  - Appends fill an in-memory tail page that is written to disk exactly
//    once when full (or on Flush) — one write per page, deterministic.
//  - Sequential scans read pages directly from the disk manager (one read
//    per page per scan). At the paper's buffer:data ratios (~1%) an LRU
//    pool gives sequential scans nothing, so bypassing it keeps costs
//    honest and matches the optimizer's scan cost formula.
//  - Point fetches (Fetch by rid, used by index probes) go through the
//    buffer pool, where repeated hits are genuinely free.

#ifndef REOPTDB_STORAGE_HEAP_FILE_H_
#define REOPTDB_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "types/tuple.h"

namespace reoptdb {

/// \brief Slotted-page heap file.
///
/// Supports append, point fetch by Rid, sequential scan, and logical
/// deletion. Deletes never rewrite pages: a deleted rid is recorded with
/// the commit epoch at which it disappeared, and scans skip rids whose
/// delete epoch is visible to them. The append-only page invariant is what
/// makes checkpoint/redo recovery (Capture/RestoreCheckpoint) a pure
/// truncate-and-replay.
class HeapFile {
 public:
  /// Epoch bound meaning "see the latest committed state": every recorded
  /// delete is visible, every appended row is in range.
  static constexpr uint64_t kLatest = ~0ULL;

  /// Truncate-and-redo restore point (see TransactionManager): the flushed
  /// page prefix plus the counters and delete map at capture time. Flushed
  /// pages are immutable (appends only ever touch the tail), so restoring
  /// is freeing the suffix and resetting counters.
  struct Checkpoint {
    size_t page_count = 0;
    uint64_t tuple_count = 0;
    uint64_t total_tuple_bytes = 0;
    uint64_t content_checksum = 0;
    /// rid key ((page_ordinal << 32) | slot) -> delete epoch.
    std::map<uint64_t, uint64_t> deleted;
  };
  explicit HeapFile(BufferPool* pool) : pool_(pool) {}
  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;
  ~HeapFile();

  /// Appends a tuple, returning its Rid. Tuples must fit on one page.
  Result<Rid> Append(const Tuple& tuple);

  /// Writes the tail page to disk if dirty. Call after bulk loads so page
  /// counts (and subsequent scan costs) are exact.
  Status Flush();

  /// Reads the tuple at `rid` (buffer-pool cached). Deleted rids still
  /// fetch (the payload bytes are never rewritten); visibility is the
  /// caller's job via IsDeletedAsOf.
  Result<Tuple> Fetch(const Rid& rid) const;

  // --- Logical deletion (transactional DML).

  /// Marks `rid` deleted as of commit `epoch`. The payload stays on its
  /// page; scans bounded at an epoch >= `epoch` skip it.
  Status MarkDeleted(const Rid& rid, uint64_t epoch);

  /// True if `rid` was deleted at an epoch visible to `as_of_epoch`.
  bool IsDeletedAsOf(const Rid& rid, uint64_t as_of_epoch) const {
    auto it = deleted_.find(RidKey(rid));
    return it != deleted_.end() && it->second <= as_of_epoch;
  }

  uint64_t deleted_count() const { return deleted_.size(); }
  /// Rows appended minus rows deleted (latest-epoch view).
  uint64_t live_tuple_count() const { return tuple_count_ - deleted_.size(); }

  /// Position of `rid` in append order (for snapshot bounds on index
  /// probes). nullopt when ordinals are unknown — adopted pages skip the
  /// bookkeeping — in which case callers must treat the row as in range.
  std::optional<uint64_t> RidOrdinal(const Rid& rid) const;

  static uint64_t RidKey(const Rid& rid) {
    return (static_cast<uint64_t>(rid.page_ordinal) << 32) | rid.slot;
  }

  // --- Checkpoint / restore (redo recovery).

  /// Captures a restore point. The tail must have been flushed first
  /// (Flush()), so the checkpoint covers only immutable on-disk pages.
  Result<Checkpoint> CaptureCheckpoint() const;

  /// Truncates the file back to `cp`: frees every page past the checkpoint
  /// prefix (and any tail), then resets counters and the delete map to the
  /// captured values. Idempotent and resumable — a failed free leaves a
  /// consistent shorter-suffix state, and a second call retries the rest.
  Status RestoreCheckpoint(const Checkpoint& cp);

  uint64_t tuple_count() const { return tuple_count_; }
  size_t page_count() const { return pages_.size() + (tail_ ? 1 : 0); }
  uint64_t total_tuple_bytes() const { return total_tuple_bytes_; }

  /// Average serialized tuple size in bytes (0 when empty).
  double avg_tuple_bytes() const {
    return tuple_count_ == 0 ? 0.0
                             : static_cast<double>(total_tuple_bytes_) /
                                   static_cast<double>(tuple_count_);
  }

  /// Page id of the i-th flushed page (for index builds).
  PageId page_id(size_t ordinal) const { return pages_[ordinal]; }
  size_t flushed_page_count() const { return pages_.size(); }

  /// Chained FNV-1a over every appended tuple's serialized payload (length
  /// then bytes), maintained incrementally by Append. The query journal
  /// records it for materialized temp tables; recovery recomputes it with
  /// ComputeContentChecksum() before trusting rebound pages.
  uint64_t content_checksum() const { return content_checksum_; }

  /// Recomputes the content checksum by scanning the raw slot payloads in
  /// append order (charges the scan's page reads). Matches
  /// content_checksum() iff the stored bytes are intact and complete.
  Result<uint64_t> ComputeContentChecksum() const;

  /// Rebinds this (empty) file to already-on-disk pages, e.g. a temp table
  /// surviving a simulated crash. Counters and the content checksum are
  /// taken from the journal record; callers validate via
  /// ComputeContentChecksum() + tuple_count().
  Status AdoptPages(std::vector<PageId> pages, uint64_t tuple_count,
                    uint64_t total_tuple_bytes, uint64_t content_checksum);

  /// Detaches the file from its pages WITHOUT freeing them (the inverse of
  /// AdoptPages): returns the flushed page ids and leaves the file empty,
  /// so the destructor will not reclaim storage that must survive a crash.
  /// An unflushed tail page is genuinely lost (it was memory-only) and is
  /// freed here.
  std::vector<PageId> ReleasePages();

  /// Frees every page of the file. The file is reusable (empty) afterwards.
  Status Destroy();

  /// \brief Sequential scan cursor (direct disk reads).
  ///
  /// Bounded form: yields only rows whose append ordinal is below
  /// `limit_ordinal` and that were not deleted at or before `as_of_epoch` —
  /// i.e. the table exactly as a snapshot at (limit, epoch) saw it.
  /// The default Scan() sees the latest committed state.
  class Iterator {
   public:
    explicit Iterator(const HeapFile* file,
                      uint64_t limit_ordinal = HeapFile::kLatest,
                      uint64_t as_of_epoch = HeapFile::kLatest)
        : file_(file), limit_(limit_ordinal), epoch_(as_of_epoch) {}

    /// Fetches the next visible tuple; returns false at end-of-file (or at
    /// the snapshot bound).
    Result<bool> Next(Tuple* out);

    /// Rid of the tuple most recently returned by Next().
    const Rid& last_rid() const { return last_rid_; }

    void Reset() {
      page_ordinal_ = 0;
      slot_ = 0;
      ordinal_ = 0;
      loaded_ = false;
    }

   private:
    const HeapFile* file_;
    uint64_t limit_;
    uint64_t epoch_;
    size_t page_ordinal_ = 0;
    uint32_t slot_ = 0;
    uint64_t ordinal_ = 0;  // append ordinal of the next slot to visit
    bool loaded_ = false;
    Rid last_rid_;
    Page buf_;
  };

  Iterator Scan() const { return Iterator(this); }
  Iterator ScanSnapshot(uint64_t limit_ordinal, uint64_t as_of_epoch) const {
    return Iterator(this, limit_ordinal, as_of_epoch);
  }

 private:
  friend class Iterator;

  BufferPool* pool_;
  std::vector<PageId> pages_;      // flushed pages
  /// First append ordinal of each flushed page (parallel to pages_); empty
  /// for adopted files, where ordinals are unknown.
  std::vector<uint64_t> page_first_ordinal_;
  std::unique_ptr<Page> tail_;     // page being filled (not yet on disk)
  PageId tail_id_ = kInvalidPageId;
  uint64_t tuple_count_ = 0;
  /// Tuples living on flushed pages (tuple_count_ minus the tail's rows).
  uint64_t flushed_tuple_count_ = 0;
  uint64_t total_tuple_bytes_ = 0;
  uint64_t content_checksum_ = 1469598103934665603ULL;  // FNV-1a offset
  /// rid key -> commit epoch at which the row was deleted.
  std::map<uint64_t, uint64_t> deleted_;
};

namespace slotted {
/// Number of tuples stored on the page.
uint16_t Count(const Page& p);
/// Appends `payload` to the page; returns the slot or NotSupported if full.
Result<uint32_t> Insert(Page* p, const std::string& payload);
/// Returns a pointer/length for the slot's payload.
Status Read(const Page& p, uint32_t slot, const char** data, size_t* len);
}  // namespace slotted

}  // namespace reoptdb

#endif  // REOPTDB_STORAGE_HEAP_FILE_H_
