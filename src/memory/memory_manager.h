// Query memory manager (after Paradise's memory module, [15] Nag & DeWitt).
//
// Each memory-consuming operator declares a minimum and maximum memory
// demand derived from (improved) size estimates. The manager divides the
// query's memory budget: maxima are granted in execution order while the
// remaining budget still covers the minima of later operators; everything
// else gets its minimum; leftover memory goes to the last operators —
// reproducing the paper's Fig. 3 narrative. Operators that have already
// started keep their allocation (Section 2.3: "once an operator starts
// executing, its memory allocation cannot be changed").

#ifndef REOPTDB_MEMORY_MEMORY_MANAGER_H_
#define REOPTDB_MEMORY_MEMORY_MANAGER_H_

#include <set>
#include <vector>

#include "common/fault.h"
#include "obs/query_trace.h"
#include "optimizer/cost_model.h"
#include "plan/physical_plan.h"

namespace reoptdb {

/// Blocking-stage execution order of a plan (build-side-first traversal);
/// shared by the scheduler and the memory manager.
void CollectBlockingOrder(PlanNode* root, std::vector<PlanNode*>* out);

/// \brief Divides query memory among a plan's operators.
class MemoryManager {
 public:
  MemoryManager(const CostModel* cost, double query_mem_pages)
      : cost_(cost), total_pages_(query_mem_pages) {}

  /// Recomputes min/max demands from `improved` estimates and re-divides
  /// memory among the plan's memory consumers. Operators whose node id is
  /// in `frozen_ids` keep their current budget (already started/finished).
  /// Returns true if any pending operator's budget changed.
  ///
  /// Fallible grant entry point — the only way to (re-)divide memory.
  /// Consults the fault injector's `memory.grant` point before dividing.
  /// On an injected (or future real) grant failure, no budget is touched —
  /// existing allocations stay exactly as they were, so a failed grant can
  /// never leave the plan half-re-budgeted — and the error is returned for
  /// the caller to treat as advisory. `faults` may be nullptr.
  ///
  /// The aggregate grant never exceeds total_pages(), except when even the
  /// 2-page-per-consumer floor does not fit the budget (or frozen
  /// operators already hold more than a shrunken total).
  ///
  /// When `trace` is non-null, every budget change is recorded as a
  /// BudgetChange{generation, node, at_ms, before, after}.
  Result<bool> TryAllocate(FaultInjector* faults, PlanNode* root,
                           const std::set<int>& frozen_ids,
                           QueryTrace* trace = nullptr, double at_ms = 0,
                           int plan_generation = 0) const;

  /// Fills node->min_mem_pages / max_mem_pages from the node's children's
  /// improved estimates.
  void ComputeDemands(PlanNode* node) const;

  double total_pages() const { return total_pages_; }

  /// Re-targets the division to a new total (a MemoryBroker revocation or
  /// regrant). Takes effect at the next TryAllocate; budgets already
  /// handed out are untouched until then.
  void set_total_pages(double pages) { total_pages_ = pages; }

 private:
  /// Infallible division pass. Private on purpose: every call site must go
  /// through TryAllocate so memory pressure surfaces as a typed Status,
  /// never as an unchecked grant.
  bool Allocate(PlanNode* root, const std::set<int>& frozen_ids,
                QueryTrace* trace = nullptr, double at_ms = 0,
                int plan_generation = 0) const;

  const CostModel* cost_;
  double total_pages_;
};

}  // namespace reoptdb

#endif  // REOPTDB_MEMORY_MEMORY_MANAGER_H_
