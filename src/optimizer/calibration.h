// Optimizer-time calibration (paper Section 2.4).
//
// "The time taken to optimize a star-join query containing n joins is
// usually rather stable for a given optimizer and database system. Hence,
// an optimizer for a particular database system can be calibrated to obtain
// these estimates." This module performs exactly that calibration: it runs
// the optimizer on synthetic star-join queries and records the simulated
// optimization time per relation count, giving the conservative
// T_opt,estimated used by the re-optimization gate.

#ifndef REOPTDB_OPTIMIZER_CALIBRATION_H_
#define REOPTDB_OPTIMIZER_CALIBRATION_H_

#include <vector>

#include "common/status.h"
#include "optimizer/cost_model.h"

namespace reoptdb {

/// \brief Calibrated optimizer-time table.
class OptimizerCalibration {
 public:
  /// Uncalibrated: falls back to an exponential model.
  OptimizerCalibration() = default;

  /// Optimizes star-join queries with 2..max_relations relations against a
  /// scratch catalog and records simulated optimization time per count.
  static Result<OptimizerCalibration> Run(int max_relations,
                                          const CostModel& cost);

  /// Conservative estimate of the (simulated) time to optimize a query
  /// with `num_relations` relations; extrapolates beyond the table.
  double EstimateOptTimeMs(int num_relations) const;

  /// Estimate of the (simulated) time for an *incremental* re-plan via
  /// Optimizer::RepairPlan when `changed_leaves` of the `num_relations`
  /// leaves are dirty: the marginal DP effort beyond the clean
  /// (num_relations - changed_leaves)-relation core, i.e.
  /// EstimateOptTimeMs(n) - EstimateOptTimeMs(n - changed), floored at one
  /// per-plan unit per relation (leaves are always re-derived). Degenerates
  /// to the full estimate when every leaf changed.
  double EstimateIncrementalOptTimeMs(int num_relations,
                                      int changed_leaves) const;

  bool calibrated() const { return !time_by_rels_.empty(); }

 private:
  /// time_by_rels_[n] = simulated ms to optimize an n-relation star join.
  std::vector<double> time_by_rels_;
  double per_plan_ms_ = 0.02;
};

}  // namespace reoptdb

#endif  // REOPTDB_OPTIMIZER_CALIBRATION_H_
