// Tests for the binder: name resolution, predicate classification,
// aggregation validation, and SQL round-tripping.

#include "gtest/gtest.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace reoptdb {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  BinderTest() : pool_(&disk_, 64), catalog_(&pool_) {
    Schema emp(std::vector<Column>{{"", "emp_id", ValueType::kInt64, 8},
                                   {"", "dept_id", ValueType::kInt64, 8},
                                   {"", "salary", ValueType::kDouble, 8},
                                   {"", "name", ValueType::kString, 10}});
    Schema dept(std::vector<Column>{{"", "dept_id", ValueType::kInt64, 8},
                                    {"", "dept_name", ValueType::kString, 10}});
    EXPECT_TRUE(catalog_.CreateTable("emp", emp).ok());
    EXPECT_TRUE(catalog_.CreateTable("dept", dept).ok());
  }

  Result<QuerySpec> BindSql(const std::string& sql) {
    Result<SelectStmtAst> ast = ParseSelect(sql);
    if (!ast.ok()) return ast.status();
    return Bind(ast.value(), catalog_);
  }

  DiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
};

TEST_F(BinderTest, ResolvesBareColumns) {
  Result<QuerySpec> r = BindSql("SELECT emp_id, salary FROM emp");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().items[0].col.rel, 0);
  EXPECT_EQ(r.value().items[0].col.column, "emp_id");
  EXPECT_EQ(r.value().items[1].col.type, ValueType::kDouble);
}

TEST_F(BinderTest, AmbiguousColumnFails) {
  Result<QuerySpec> r = BindSql("SELECT dept_id FROM emp, dept");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
  // Qualification resolves the ambiguity.
  EXPECT_TRUE(BindSql("SELECT emp.dept_id FROM emp, dept").ok());
}

TEST_F(BinderTest, UnknownColumnAndTableFail) {
  EXPECT_FALSE(BindSql("SELECT nope FROM emp").ok());
  EXPECT_EQ(BindSql("SELECT a FROM nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(BinderTest, DuplicateAliasFails) {
  EXPECT_FALSE(BindSql("SELECT e.emp_id FROM emp e, dept e").ok());
}

TEST_F(BinderTest, ClassifiesFiltersAndJoins) {
  Result<QuerySpec> r = BindSql(
      "SELECT emp_id FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id AND salary > 1000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().joins.size(), 1u);
  EXPECT_EQ(r.value().joins[0].left_rel, 0);
  EXPECT_EQ(r.value().joins[0].right_rel, 1);
  ASSERT_EQ(r.value().filters.size(), 1u);
  EXPECT_EQ(r.value().filters[0].rel, 0);
  EXPECT_EQ(r.value().filters[0].column, "salary");
}

TEST_F(BinderTest, SameRelationColumnPredicateBecomesFilter) {
  Result<QuerySpec> r = BindSql(
      "SELECT emp_id FROM emp WHERE emp_id < dept_id AND salary >= 10.5");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().filters.size(), 2u);
  EXPECT_TRUE(r.value().filters[0].rhs_is_column);
  EXPECT_EQ(r.value().filters[0].rhs_column, "dept_id");
  EXPECT_FALSE(r.value().filters[1].rhs_is_column);
}

TEST_F(BinderTest, LiteralNormalizedToRhs) {
  Result<QuerySpec> r = BindSql("SELECT emp_id FROM emp WHERE 1000 < salary");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().filters.size(), 1u);
  EXPECT_EQ(r.value().filters[0].column, "salary");
  EXPECT_EQ(r.value().filters[0].op, CmpOp::kGt);  // flipped
}

TEST_F(BinderTest, CrossRelationInequalityRejected) {
  Result<QuerySpec> r = BindSql(
      "SELECT emp_id FROM emp, dept WHERE emp.dept_id < dept.dept_id");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST_F(BinderTest, TypeMismatchRejected) {
  EXPECT_FALSE(BindSql("SELECT emp_id FROM emp WHERE name > 5").ok());
  EXPECT_FALSE(BindSql("SELECT emp_id FROM emp WHERE salary = 'x'").ok());
  EXPECT_FALSE(
      BindSql("SELECT e.emp_id FROM emp e, dept d WHERE e.name = d.dept_id")
          .ok());
}

TEST_F(BinderTest, AggregationValidation) {
  // Plain column not in GROUP BY.
  Result<QuerySpec> bad =
      BindSql("SELECT dept_id, name, SUM(salary) FROM emp GROUP BY dept_id");
  ASSERT_FALSE(bad.ok());
  // Correct form binds.
  Result<QuerySpec> good = BindSql(
      "SELECT emp.dept_id, SUM(salary) FROM emp GROUP BY emp.dept_id");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_TRUE(good.value().has_aggregates());
  ASSERT_EQ(good.value().group_by.size(), 1u);
}

TEST_F(BinderTest, SumOfStringRejected) {
  EXPECT_FALSE(BindSql("SELECT SUM(name) FROM emp").ok());
  // MIN/MAX of strings are fine.
  EXPECT_TRUE(BindSql("SELECT MIN(name) FROM emp").ok());
}

TEST_F(BinderTest, OrderByBindsToSelectList) {
  Result<QuerySpec> r = BindSql(
      "SELECT emp.dept_id, SUM(salary) AS total FROM emp "
      "GROUP BY emp.dept_id ORDER BY total DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().order_by.size(), 1u);
  EXPECT_EQ(r.value().order_by[0].first, 1);
  EXPECT_FALSE(r.value().order_by[0].second);

  EXPECT_FALSE(
      BindSql("SELECT emp_id FROM emp ORDER BY salary").ok());  // not selected
}

TEST_F(BinderTest, DefaultOutputNames) {
  Result<QuerySpec> r = BindSql(
      "SELECT emp.dept_id, SUM(salary), COUNT(*) FROM emp GROUP BY emp.dept_id");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().items[0].name, "dept_id");
  EXPECT_EQ(r.value().items[1].name, "sum_salary");
  EXPECT_EQ(r.value().items[2].name, "count_star");
}

TEST_F(BinderTest, ToSqlRoundTrips) {
  const std::string sql =
      "SELECT emp.dept_id, SUM(salary) AS total FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id AND salary > 1000 "
      "GROUP BY emp.dept_id ORDER BY total DESC LIMIT 5";
  Result<QuerySpec> once = BindSql(sql);
  ASSERT_TRUE(once.ok()) << once.status().ToString();
  std::string regenerated = once.value().ToSql();
  Result<QuerySpec> twice = BindSql(regenerated);
  ASSERT_TRUE(twice.ok()) << "regen: " << regenerated << " -> "
                          << twice.status().ToString();
  EXPECT_EQ(once.value().ToSql(), twice.value().ToSql());
  EXPECT_EQ(twice.value().joins.size(), 1u);
  EXPECT_EQ(twice.value().limit, 5);
}

TEST_F(BinderTest, StarExpandsToAllColumns) {
  Result<QuerySpec> r = BindSql("SELECT * FROM emp");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().items.size(), 4u);
  EXPECT_EQ(r.value().items[0].name, "emp_id");
  EXPECT_EQ(r.value().items[3].name, "name");

  // Across a join: emp columns then dept columns, duplicates renamed.
  Result<QuerySpec> j = BindSql(
      "SELECT * FROM emp, dept WHERE emp.dept_id = dept.dept_id");
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  ASSERT_EQ(j.value().items.size(), 6u);
  EXPECT_EQ(j.value().items[1].name, "dept_id");
  EXPECT_EQ(j.value().items[4].name, "dept_id_1");  // dept's copy renamed
}

TEST_F(BinderTest, SelfJoinAliases) {
  Result<QuerySpec> r = BindSql(
      "SELECT e1.emp_id FROM emp e1, emp e2 WHERE e1.dept_id = e2.emp_id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().joins.size(), 1u);
  EXPECT_EQ(r.value().relations[0].alias, "e1");
  EXPECT_EQ(r.value().relations[1].alias, "e2");
}

}  // namespace
}  // namespace reoptdb
