#include "stats/fm_sketch.h"

#include <cmath>
#include <cstring>

namespace reoptdb {

namespace {
// Magic constant from Flajolet & Martin (phi correction factor).
constexpr double kPhi = 0.77351;
}  // namespace

FmSketch::FmSketch() { Reset(); }

void FmSketch::Reset() { std::memset(bitmaps_, 0, sizeof(bitmaps_)); }

void FmSketch::AddHash(uint64_t hash) {
  int map = static_cast<int>(hash & (kNumMaps - 1));
  uint64_t rest = hash >> 6;
  // rho = position of the lowest set bit of the remaining bits.
  int rho = rest == 0 ? 57 : __builtin_ctzll(rest);
  if (rho > 57) rho = 57;
  bitmaps_[map] |= (1ULL << rho);
}

double FmSketch::Estimate() const {
  // Average position of the lowest unset bit across bitmaps.
  double sum_r = 0;
  for (int i = 0; i < kNumMaps; ++i) {
    uint64_t bm = bitmaps_[i];
    int r = 0;
    while (r < 58 && (bm & (1ULL << r))) ++r;
    sum_r += r;
  }
  double mean_r = sum_r / kNumMaps;
  return kNumMaps / kPhi * std::pow(2.0, mean_r);
}

void FmSketch::Merge(const FmSketch& other) {
  for (int i = 0; i < kNumMaps; ++i) bitmaps_[i] |= other.bitmaps_[i];
}

}  // namespace reoptdb
