// Hash aggregation with partition spilling.
//
// Aggregate states (sum, count, min, max) are mergeable, so on memory
// overflow the operator spills *partial states* to hash partitions and
// merges them partition-by-partition — group counts that exceed the
// optimizer's estimate degrade gracefully into extra I/O, which is exactly
// what the paper's unique-values statistics help the memory manager avoid.

#ifndef REOPTDB_EXEC_HASH_AGGREGATE_H_
#define REOPTDB_EXEC_HASH_AGGREGATE_H_

#include <deque>
#include <memory>
#include <unordered_map>

#include "exec/operator.h"
#include "storage/heap_file.h"

namespace reoptdb {

/// \brief Hash-based GROUP BY + aggregates.
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(ExecContext* ctx, PlanNode* node) : Operator(ctx, node) {}

  Status OpenImpl() override;
  Status BlockingPhaseImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Status CloseImpl() override;

  bool spilled() const { return spilled_; }

 private:
  /// Mergeable state of one aggregate within one group.
  struct OneAgg {
    double sum = 0;
    int64_t count = 0;
    Value min, max;
    bool has_minmax = false;
  };
  struct GroupState {
    std::vector<Value> group_values;
    std::vector<OneAgg> aggs;
  };

  struct PendingPartition {
    std::unique_ptr<HeapFile> file;
    int depth;
  };

  /// Merges one partial state into the in-memory table. `bytes_delta`
  /// receives the growth in accounted memory.
  void Merge(const std::string& key, GroupState state);

  /// Serializes a group state into a spill tuple and back.
  Tuple StateToTuple(const GroupState& s) const;
  Result<GroupState> TupleToState(const Tuple& t) const;

  std::string KeyOf(const std::vector<Value>& group_values) const;
  Status SpillAll(int depth);
  Status AbsorbPartition(PendingPartition part);
  void StartEmit();
  Tuple FinalizeGroup(const GroupState& s) const;

  // Input column indexes.
  std::vector<size_t> group_idx_;
  std::vector<size_t> agg_idx_;  // per AggSpec; SIZE_MAX for COUNT(*)

  // Output layout: for each output column, either a group ordinal or an
  // aggregate ordinal.
  struct OutCol {
    bool is_group;
    size_t idx;
  };
  std::vector<OutCol> out_cols_;

  double budget_bytes_ = 0;
  /// Budget seen at Open; a smaller current budget means the grant shrank
  /// mid-flight (broker revocation), which attributes the spill reason.
  double open_budget_bytes_ = 0;
  size_t fanout_ = 8;
  bool built_ = false;
  bool spilled_ = false;

  std::unordered_map<std::string, GroupState> table_;
  double mem_bytes_ = 0;
  std::deque<PendingPartition> pending_;
  std::vector<std::unique_ptr<HeapFile>> parts_;  // open spill partitions
  int spill_depth_ = 0;

  // Emission state.
  bool emitting_ = false;
  std::vector<GroupState> emit_rows_;
  size_t emit_pos_ = 0;
  bool emitted_any_ = false;
  bool emitted_empty_global_ = false;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_HASH_AGGREGATE_H_
