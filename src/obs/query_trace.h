// Structured query observability (the machine-readable counterpart of the
// ExecutionReport's legacy `events` strings).
//
// The paper's whole premise is visibility into a running plan: collector
// feedback, the Eq.(1)/Eq.(2) re-optimization gates, memory re-allocation
// and plan-switch decisions. A QueryTrace records all of it as typed
// records — per-operator spans plus decision records — that tests and
// benchmarks can assert against and that serialize losslessly to JSON.
// The `events` string list remains available as a rendered view.

#ifndef REOPTDB_OBS_QUERY_TRACE_H_
#define REOPTDB_OBS_QUERY_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"

namespace reoptdb {

/// One operator's execution span. Times are simulated milliseconds on the
/// query clock; `next_ms`/`page_ios` are inclusive of children (subtract
/// child spans to attribute self time). `plan_generation` distinguishes
/// operators of the initial plan (0) from re-optimized plans (1, 2, ...),
/// whose node ids may collide with earlier generations.
struct OperatorSpan {
  int plan_generation = 0;
  int node_id = -1;
  std::string op;      ///< operator kind name ("HashJoin", "SeqScan", ...)
  std::string detail;  ///< scans: "table [alias]"; empty otherwise
  double open_at_ms = -1;   ///< sim-time when Open() ran
  double close_at_ms = -1;  ///< sim-time when Close() ran (-1 = never closed)
  double blocking_ms = 0;   ///< inclusive sim-time in the blocking phase
  double next_ms = 0;       ///< inclusive sim-time across all Next() calls
  uint64_t next_calls = 0;
  uint64_t rows = 0;      ///< tuples produced
  uint64_t page_ios = 0;  ///< inclusive page I/Os during Next()/blocking
};

/// Eq. (2) sub-optimality check: fired when
/// (improved - est) / est > theta2.
struct Eq2Check {
  int stage_node_id = -1;  ///< frontier (stage) node the check ran after
  double improved = 0;     ///< improved estimated total cost (ms)
  double est = 0;          ///< original optimizer estimate (ms)
  double degradation = 0;  ///< (improved - est) / est
  double theta2 = 0;
  bool fired = false;
  /// Oscillation damping under multi-query overload: the only change since
  /// the previous gate evaluation was a broker revocation (no new collector
  /// feedback), so the check was recorded but suppressed (`fired` stays
  /// false) — re-optimizing on self-inflicted memory churn would feed a
  /// revoke -> reopt -> revoke loop.
  bool revocation_only = false;
  /// Concurrent-DML churn contributed: improved estimates of unstarted
  /// scans over churned base tables were rescaled by the observed growth
  /// factor before the gate was evaluated, so the check can fire on stats
  /// staleness alone even when collector feedback matched the estimates.
  bool stats_churn = false;
  /// The cluster scrubber reported integrity findings since the previous
  /// gate evaluation, so every journaled temp snapshot for this query was
  /// re-verified (tuple count + content checksum) before the remainder was
  /// allowed to resume from it; mismatching stages were dropped from the
  /// journal.
  bool integrity_recheck = false;
};

/// Eq. (1) optimizer-cost check: fired when t_opt_est <= theta1 * rem_cur.
struct Eq1Check {
  int stage_node_id = -1;
  double t_opt_est = 0;  ///< estimated cost of re-invoking the optimizer
  double rem_cur = 0;    ///< improved remaining time of the current plan
  double theta1 = 0;
  bool fired = false;
};

/// Outcome of one considered plan switch (optimizer was re-invoked).
struct SwitchDecision {
  int stage_node_id = -1;
  double rem_cur = 0;  ///< remaining time under the current plan
  double rem_new = 0;  ///< finish frontier + materialize + new plan + t_opt
  bool accepted = false;
  std::string temp_table;  ///< temp table considered / materialized into
  uint64_t mat_rows = 0;   ///< rows materialized (0 unless accepted)
};

/// One memory-manager re-invocation triggered by collector feedback.
struct MemoryReallocation {
  int trigger_node_id = -1;    ///< stage node or (mid-exec) collector id
  bool mid_execution = false;  ///< Section 2.3 extension fired mid-stage
  double before_ms = 0;        ///< improved total cost before re-allocation
  double after_ms = 0;         ///< improved total cost after re-allocation
  bool kept = false;           ///< false = rolled back (no clear improvement)
};

/// One failure inside the re-optimization side path (or its storage
/// dependencies). Most are recovered: the candidate switch is rolled back
/// (or the failed step skipped as advisory) and the query keeps executing
/// on its current plan. `action` records what the controller did:
///   "rolled_back" — candidate switch abandoned, current plan continues
///   "continued"   — advisory step skipped (stats refresh, memory grant),
///                   execution proceeds otherwise unchanged
///   "fatal"       — past the point of no return; the query fails with
///                   `status` after full temp-table/hook cleanup
///   "crashed"     — injected crash (simulated process death): the query
///                   fails with kCrashed and NO cleanup runs; durable
///                   state is left for the RecoveryManager
struct ReoptFailure {
  std::string point;   ///< failure site ("reopt.optimize", "memory.grant"...)
  std::string status;  ///< the non-OK Status, rendered
  std::string action;  ///< "rolled_back" | "continued" | "fatal"
  int attempts = 1;    ///< I/O attempts incl. transparent retries at the site
  int stage_node_id = -1;  ///< frontier node (-1 outside a stage)
  double at_ms = 0;
};

/// Controller self-demotion after repeated recovered failures: dynamic
/// re-optimization switches off for the query remainder (graceful
/// degradation — the query must never fail because an optional
/// optimization kept failing).
struct DegradationEvent {
  std::string from_mode;  ///< ReoptModeName before demotion
  std::string to_mode;    ///< always "off" today
  int failures = 0;       ///< recovered failures that triggered it
  double at_ms = 0;
};

/// One restart-resume decision by the RecoveryManager. When `resumed` is
/// true, a journaled re-optimization stage was validated and rebound and
/// the remainder query ran instead of the original from scratch (EXPLAIN
/// ANALYZE: "resumed from stage N, skipped X ms of work").
struct RecoveryEvent {
  int stage = 0;               ///< journal stage resumed from (1-based)
  std::string temp_table;      ///< rebound temp table name
  uint64_t rows = 0;           ///< validated temp-table row count
  double skipped_work_ms = 0;  ///< journaled work not re-done
  bool fingerprint_match = false;  ///< resumed plan == journaled fingerprint
  bool resumed = false;        ///< false: nothing usable, ran from scratch
};

/// Recovery declined to trust durable state (corrupt journal record,
/// checksum/row-count mismatch, missing pages, load fault) and fell back
/// to a clean from-scratch re-run — saved work is sacrificed, the answer
/// never is.
struct RecoveryFallback {
  std::string reason;
};

/// One operator spill decision under memory pressure: the in-memory
/// footprint exceeded the budget (or the budget shrank mid-flight after a
/// broker revocation) and the operator degraded to partitioned / external
/// execution instead of erroring. The extra I/O is on the sim clock.
struct SpillEvent {
  int plan_generation = 0;
  int node_id = -1;
  std::string op;      ///< "hash-join" | "sort" | "aggregate"
  std::string reason;  ///< "budget" | "shrink" | "repartition"
  int partitions = 0;  ///< spill partitions / external runs created
  double at_ms = 0;
};

/// One admission-control decision that kept a query out of the engine:
/// the bounded FIFO queue overflowed, the ask could never fit the global
/// budget, or the queued wait exhausted the query's deadline. Recorded in
/// the WorkloadManager's trace (the query never ran, so it has no
/// QueryTrace of its own).
struct AdmissionReject {
  uint64_t query_id = 0;
  std::string reason;  ///< "queue_full" | "ask_exceeds_budget" |
                       ///< "queued_deadline"
  size_t queued = 0;   ///< queue length at the decision
  int active = 0;      ///< active sessions at the decision
  double at_ms = 0;    ///< workload clock
};

/// One revocable-grant shave by the memory broker: `pages` were taken from
/// the victim's unpinned portion (operators not yet started) to satisfy
/// the beneficiary's request. The victim is notified and re-divides its
/// shrunken grant; in-flight operators spill if they are now over budget.
struct RevocationEvent {
  uint64_t victim_query_id = 0;
  uint64_t beneficiary_query_id = 0;
  double pages = 0;               ///< pages shaved from the victim
  double victim_grant_after = 0;  ///< victim's grant after the shave
  double at_ms = 0;               ///< workload clock
};

/// One estimate corrected from the cardinality feedback store during
/// optimization: the optimizer consulted persisted runtime observations
/// before synthetic statistics (scope "base" = filtered base relation,
/// "join" = join subset).
struct FeedbackApplied {
  std::string scope;      ///< "base" | "join"
  std::string table;      ///< base scope: table name; join scope: empty
  std::string signature;  ///< predicate / join signature matched
  double est_rows = 0;    ///< synthetic estimate before feedback
  double fb_rows = 0;     ///< estimate after applying feedback
  bool partial = false;   ///< feedback was a lower bound (raise-only)
};

/// One plan-correction-cache hit: a repeat query started directly on the
/// corrected plan a previous execution switched to, skipping optimization.
struct PlanCacheHit {
  std::string sql;          ///< canonical SQL key
  double saved_opt_ms = 0;  ///< optimizer time not charged to this query
  int entry_hits = 0;       ///< cumulative hits on the entry (this one incl.)
};

/// One incremental memo repair at a re-optimization point: instead of
/// re-deriving every relation subset from scratch, the retained DP memo was
/// invalidated along its changed leaves and repaired bottom-up. When
/// `fell_back` is true no memo was available (or its feedback-store
/// generation drifted) and the optimizer re-planned from scratch; the
/// entry/offer counters then describe that scratch run.
struct MemoRepair {
  int stage_node_id = -1;
  uint64_t entries_total = 0;        ///< retained memo entries handed in
  uint64_t entries_invalidated = 0;  ///< dropped: touched a changed leaf
  uint64_t entries_reused = 0;       ///< moved in verbatim (clean subsets)
  uint64_t offers_repaired = 0;      ///< DP candidates (re-)costed
  int leaves_changed = 0;            ///< dirty leaves (temp table included)
  bool fell_back = false;            ///< from-scratch re-plan ran instead
  double incremental_ms = 0;         ///< sim optimizer time actually charged
  double scratch_est_ms = 0;         ///< calibrated from-scratch estimate
};

/// One operator's budget change from a memory-manager pass.
struct BudgetChange {
  int plan_generation = 0;
  int node_id = -1;
  double at_ms = 0;  ///< sim-time of the re-allocation
  double before_pages = 0;
  double after_pages = 0;
};

// --- Transaction-layer records (kept in the TransactionManager's TxnLog,
// not in a per-query trace: transactions span queries and survive them).

/// A transaction entered the system.
struct TxnBeginRecord {
  uint64_t txn_id = 0;
};

/// A transaction committed: its WAL records were fsynced and its write set
/// applied to the heaps/indexes at `epoch`.
struct TxnCommitRecord {
  uint64_t txn_id = 0;
  uint64_t epoch = 0;        ///< commit epoch (drives delete visibility)
  uint64_t wal_records = 0;  ///< redo records this txn logged (incl. commit)
  uint64_t rows_changed = 0; ///< inserts + deletes applied
  std::string client_tag;    ///< caller-supplied idempotency tag ("" = none)
};

/// A transaction aborted (explicit rollback, error, deadlock victim, or
/// lock-wait timeout); its buffered writes were discarded unapplied.
struct TxnAbortRecord {
  uint64_t txn_id = 0;
  std::string reason;  ///< "rollback" | "deadlock" | "timeout" | status text
};

/// A lock request conflicted and the requester started (or continued)
/// waiting. One record per distinct (txn, resource) wait episode.
struct LockWaitRecord {
  uint64_t txn_id = 0;
  uint64_t holder_txn_id = 0;  ///< one conflicting holder (lowest id)
  std::string resource;        ///< "table:t" or "row:t:<ridkey>"
  std::string mode;            ///< requested mode ("S"/"X"/"IS"/"IX")
};

/// The wait-for graph closed a cycle; the youngest transaction in it was
/// aborted to break the deadlock.
struct DeadlockVictimRecord {
  uint64_t victim_txn_id = 0;
  uint64_t requester_txn_id = 0;  ///< whose acquire detected the cycle
  std::string resource;           ///< resource the requester was after
  int cycle_length = 0;           ///< transactions in the cycle
};

/// One WAL redo pass by recovery: checkpoints restored, then committed
/// transactions re-applied in commit order.
struct WalReplayRecord {
  uint64_t committed_txns = 0;   ///< transactions redone
  uint64_t records_applied = 0;  ///< insert/delete records re-applied
  uint64_t records_skipped = 0;  ///< uncommitted / already-present entries
  uint64_t tables_restored = 0;  ///< heap checkpoints rolled back first
};

// --- Sharded-execution records (DESIGN.md §15). Written by the shard
// executor into the coordinator query's trace.

/// A join stage's exchange delivered a build side far heavier on one node
/// than the optimizer's estimate implied: max per-node receive exceeded
/// skew_factor x the even share (and the 2x-mean sanity floor). Raised
/// whether or not re-optimization is enabled; the DistributionSwitch record
/// says what, if anything, was done about it.
struct ShardSkewRecord {
  int stage = 0;           ///< 1-based join-stage ordinal
  int node = -1;           ///< hottest node
  uint64_t node_rows = 0;  ///< rows that node received
  double est_share = 0;    ///< estimated even per-node share
  double skew_factor = 0;  ///< configured trigger threshold
};

/// One node's charged sim-time for a stage exceeded the configured ratio
/// over the peer percentile: later slot tables down-weight it.
struct StragglerRecord {
  int stage = 0;
  int node = -1;
  double node_ms = 0;       ///< straggler's charged time this stage
  double percentile_ms = 0; ///< peer percentile it was compared against
  double new_weight = 0;    ///< repartition weight applied going forward
};

/// A simulated node died (node.crash fault, or a net link that stayed down
/// past the retry budget). The stage re-ran on the survivors after the dead
/// node's base partitions were re-homed; completed stages were revalidated
/// from the query journal.
struct NodeLostRecord {
  int stage = 0;
  int node = -1;
  std::string reason;        ///< "node.crash" | "net.send" | "net.recv"
  int survivors = 0;         ///< alive nodes after the loss
  uint64_t rehomed_rows = 0; ///< base-partition rows moved to survivors
  bool journal_resume = false;  ///< prior stages validated from the journal
  /// Rows restored by promoting surviving replicas (local copies — no
  /// coordinator I/O). With replication_factor >= 2 and any surviving
  /// replica, coordinator_rows stays 0.
  uint64_t promoted_rows = 0;
  /// Rows that had no surviving replica and were re-read from the
  /// coordinator's durable copy (the k=1 legacy path).
  uint64_t coordinator_rows = 0;
  uint64_t epoch = 0;  ///< membership epoch after the loss was fenced
};

/// The executor changed a join's distribution strategy — at planning time
/// from observed build size ("build-estimate") or mid-stage after a skew
/// trigger ("skew").
struct DistributionSwitchRecord {
  int stage = 0;
  std::string from;    ///< "broadcast" | "repartition"
  std::string to;
  std::string reason;  ///< "build-estimate" | "skew"
  double est_ms = 0;   ///< projected makespan of the rejected strategy
  double new_ms = 0;   ///< projected makespan of the chosen strategy
};

/// A node's health degraded to suspicion instead of death: an exchange
/// transfer kept failing past the channel's retry budget, but the
/// heartbeat lease had not expired, so the stage was retried on the same
/// membership rather than evacuating the node. Only a lease expiry (or a
/// node.crash) escalates to NodeLostRecord.
struct NodeSuspectRecord {
  int stage = 0;
  int node = -1;
  std::string reason;       ///< "net.send" | "net.recv"
  int missed_beats = 0;     ///< consecutive missed heartbeats so far
  double lease_remaining_ms = 0;  ///< sim-clock lease left before death
};

/// A stale send was fenced: a message stamped with a pre-failure membership
/// epoch reached the exchange after the cluster had moved on (the "zombie"
/// node of a node.resurrect fault). The buffer was dropped, never merged
/// into the stage.
struct EpochFenceRecord {
  int stage = 0;
  int node = -1;            ///< the stale sender
  uint64_t stale_epoch = 0;    ///< epoch stamped on the fenced buffer
  uint64_t current_epoch = 0;  ///< cluster epoch that rejected it
  uint64_t fenced_rows = 0;    ///< rows dropped with the buffer
};

/// One partition copy was rebuilt from a healthy source: replica promotion
/// after a node loss, k-copy re-establishment afterward, or a scrub repair
/// of a quarantined copy.
struct ReplicaRepairRecord {
  std::string table;
  int node = -1;        ///< node whose copy was rebuilt
  std::string role;     ///< "primary" | "replica"
  std::string source;   ///< "replica" | "primary" | "coordinator"
  uint64_t rows = 0;
  double sim_ms = 0;    ///< simulated repair cost charged to the cluster
};

/// Anti-entropy scrub finding for one partition copy: a kDataLoss read
/// (bit-rot caught by the page checksum) or a content checksum that
/// diverged from the coordinator's slice. Clean copies are not recorded.
struct ScrubReportRecord {
  std::string table;
  int node = -1;
  std::string role;     ///< "primary" | "replica"
  std::string finding;  ///< "data-loss" | "divergence"
  uint64_t rows_expected = 0;  ///< rows the directory assigns this copy
  bool repaired = false;
};

/// The re-optimization configuration the query ran under.
struct TraceConfig {
  std::string mode;  ///< ReoptModeName
  double mu = 0;
  double theta1 = 0;
  double theta2 = 0;
  bool mid_execution_memory = false;
};

/// \brief Typed trace of one query execution.
class QueryTrace {
 public:
  TraceConfig config;
  /// Per-Next sim-time sampling for spans. Row/call counters are always
  /// maintained; disable this to skip the clock reads on hot paths.
  bool operator_timing = true;

  std::deque<OperatorSpan> spans;  ///< deque: stable addresses for live ops
  std::vector<Eq2Check> eq2_checks;
  std::vector<Eq1Check> eq1_checks;
  std::vector<SwitchDecision> switches;
  std::vector<MemoryReallocation> memory_reallocations;
  std::vector<BudgetChange> budget_changes;
  std::vector<ReoptFailure> reopt_failures;
  std::vector<DegradationEvent> degradations;
  std::vector<RecoveryEvent> recoveries;
  std::vector<RecoveryFallback> recovery_fallbacks;
  std::vector<SpillEvent> spills;
  /// Revocations this query *suffered* (victim side); the broker keeps the
  /// workload-wide log.
  std::vector<RevocationEvent> revocations;
  std::vector<FeedbackApplied> feedback_applied;
  std::vector<PlanCacheHit> plan_cache_hits;
  std::vector<MemoRepair> memo_repairs;
  // Sharded execution (empty for single-node queries).
  std::vector<ShardSkewRecord> shard_skews;
  std::vector<StragglerRecord> stragglers;
  std::vector<NodeLostRecord> node_losses;
  std::vector<DistributionSwitchRecord> distribution_switches;
  // Replication / integrity (PR 10; empty for single-node queries).
  std::vector<NodeSuspectRecord> node_suspects;
  std::vector<EpochFenceRecord> epoch_fences;
  std::vector<ReplicaRepairRecord> replica_repairs;
  std::vector<ScrubReportRecord> scrub_reports;

  OperatorSpan* NewSpan() {
    spans.emplace_back();
    return &spans.back();
  }

  /// Lossless, deterministic JSON serialization (see obs/json.h).
  std::string ToJson() const;
  static Result<QueryTrace> FromJson(const std::string& json);

  /// Human-readable rendering (the EXPLAIN ANALYZE body): per-operator
  /// table plus the decision records.
  std::string Summary() const;

  /// Compact one-line JSON for benchmark trajectories: total per-operator
  /// attribution and decision counts.
  std::string CompactSummaryJson() const;
};

// Rendered-event views: the legacy ExecutionReport `events` strings are
// produced from the typed records with these.
std::string Render(const Eq2Check& r);
std::string Render(const Eq1Check& r);
std::string Render(const SwitchDecision& r);
std::string Render(const MemoryReallocation& r);
std::string Render(const ReoptFailure& r);
std::string Render(const DegradationEvent& r);
std::string Render(const RecoveryEvent& r);
std::string Render(const RecoveryFallback& r);
std::string Render(const SpillEvent& r);
std::string Render(const AdmissionReject& r);
std::string Render(const RevocationEvent& r);
std::string Render(const FeedbackApplied& r);
std::string Render(const PlanCacheHit& r);
std::string Render(const MemoRepair& r);
std::string Render(const ShardSkewRecord& r);
std::string Render(const StragglerRecord& r);
std::string Render(const NodeLostRecord& r);
std::string Render(const DistributionSwitchRecord& r);
std::string Render(const NodeSuspectRecord& r);
std::string Render(const EpochFenceRecord& r);
std::string Render(const ReplicaRepairRecord& r);
std::string Render(const ScrubReportRecord& r);
std::string Render(const TxnBeginRecord& r);
std::string Render(const TxnCommitRecord& r);
std::string Render(const TxnAbortRecord& r);
std::string Render(const LockWaitRecord& r);
std::string Render(const DeadlockVictimRecord& r);
std::string Render(const WalReplayRecord& r);

}  // namespace reoptdb

#endif  // REOPTDB_OBS_QUERY_TRACE_H_
