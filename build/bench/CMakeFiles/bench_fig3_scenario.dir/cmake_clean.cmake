file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_scenario.dir/bench_fig3_scenario.cpp.o"
  "CMakeFiles/bench_fig3_scenario.dir/bench_fig3_scenario.cpp.o.d"
  "bench_fig3_scenario"
  "bench_fig3_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
