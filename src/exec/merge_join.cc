#include "exec/merge_join.h"

namespace reoptdb {

Status MergeJoinOp::OpenImpl() {
  RETURN_IF_ERROR(OpenChildren());
  const Schema& ls = child(0)->OutputSchema();
  const Schema& rs = child(1)->OutputSchema();
  for (const std::string& k : node_->left_keys) {
    ASSIGN_OR_RETURN(size_t i, ls.IndexOf(k));
    left_keys_.push_back(i);
  }
  for (const std::string& k : node_->right_keys) {
    ASSIGN_OR_RETURN(size_t i, rs.IndexOf(k));
    right_keys_.push_back(i);
  }
  return Status::OK();
}

int MergeJoinOp::CompareKeys(const Tuple& left, const Tuple& right) const {
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    int c = left.at(left_keys_[i]).Compare(right.at(right_keys_[i]));
    if (c != 0) return c;
  }
  return 0;
}

Status MergeJoinOp::AdvanceRightGroup() {
  right_group_.clear();
  if (!right_started_) {
    right_started_ = true;
    ASSIGN_OR_RETURN(right_ahead_valid_, child(1)->Next(&right_ahead_));
    if (!right_ahead_valid_) right_exhausted_ = true;
  }
  if (!right_ahead_valid_) {
    right_exhausted_ = true;
    return Status::OK();
  }
  right_group_.push_back(std::move(right_ahead_));
  right_ahead_valid_ = false;
  while (true) {
    Tuple next;
    ASSIGN_OR_RETURN(bool more, child(1)->Next(&next));
    if (!more) {
      right_exhausted_ = true;
      return Status::OK();
    }
    ctx_->ChargeCmp(1);
    // Right-to-right key comparison (same key columns on both operands).
    bool same = true;
    for (size_t i = 0; i < right_keys_.size(); ++i) {
      if (next.at(right_keys_[i]) != right_group_[0].at(right_keys_[i])) {
        same = false;
        break;
      }
    }
    if (same) {
      right_group_.push_back(std::move(next));
    } else {
      right_ahead_ = std::move(next);
      right_ahead_valid_ = true;
      return Status::OK();
    }
  }
}

Result<bool> MergeJoinOp::NextImpl(Tuple* out) {
  while (true) {
    // Emit pending pairs for the current match.
    if (matching_ && group_pos_ < right_group_.size()) {
      *out = Tuple::Concat(left_row_, right_group_[group_pos_++]);
      ctx_->ChargeTuples(1);
      return true;
    }
    if (matching_) {
      // Done pairing this left row; the next left row may match the same
      // right group (duplicate left keys).
      matching_ = false;
      ASSIGN_OR_RETURN(left_valid_, child(0)->Next(&left_row_));
      if (!left_valid_) return false;
      ctx_->ChargeCmp(1);
      if (!right_group_.empty() &&
          CompareKeys(left_row_, right_group_[0]) == 0) {
        matching_ = true;
        group_pos_ = 0;
      }
      continue;
    }

    // Alignment phase.
    if (!left_valid_) {
      ASSIGN_OR_RETURN(left_valid_, child(0)->Next(&left_row_));
      if (!left_valid_) return false;
    }
    if (right_group_.empty()) {
      if (right_exhausted_) return false;
      RETURN_IF_ERROR(AdvanceRightGroup());
      if (right_group_.empty()) return false;
    }
    ctx_->ChargeCmp(1);
    int c = CompareKeys(left_row_, right_group_[0]);
    if (c == 0) {
      matching_ = true;
      group_pos_ = 0;
    } else if (c < 0) {
      ASSIGN_OR_RETURN(left_valid_, child(0)->Next(&left_row_));
      if (!left_valid_) return false;
    } else {
      right_group_.clear();
      if (right_exhausted_) return false;
      RETURN_IF_ERROR(AdvanceRightGroup());
      if (right_group_.empty()) return false;
    }
  }
}

Status MergeJoinOp::CloseImpl() {
  right_group_.clear();
  return CloseChildren();
}

}  // namespace reoptdb
