// System-R style dynamic-programming query optimizer [22].
//
// Produces annotated physical plans: every node carries the optimizer's
// cardinality/size/cost estimates, which the Dynamic Re-Optimization
// machinery later compares against observed statistics.

#ifndef REOPTDB_OPTIMIZER_OPTIMIZER_H_
#define REOPTDB_OPTIMIZER_OPTIMIZER_H_

#include <memory>

#include "catalog/catalog.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan_memo.h"
#include "optimizer/selectivity.h"
#include "plan/physical_plan.h"
#include "plan/query_spec.h"

namespace reoptdb {

/// Optimizer knobs.
struct OptimizerOptions {
  /// Memory (pages) the optimizer optimistically assumes each
  /// memory-consuming operator will receive. The actual division is decided
  /// by the MemoryManager at execution time — exactly the estimate/actual
  /// gap the paper's dynamic memory re-allocation corrects.
  double assumed_mem_pages = 512;
  bool enable_index_nl_join = true;
  /// Sort-merge joins (fully implemented and tested) are excluded from the
  /// default search space: Paradise's optimizer was hash-based, and the
  /// SMJ cost model is not yet calibrated against the re-optimization
  /// gate's accept test (DESIGN.md §7). Enable for experiments.
  bool enable_sort_merge_join = false;
  bool enable_index_scan = true;
  /// Paradise/System-R plan shape: hash joins consume the accumulated left
  /// subtree as their build input ("a blocking operator, like hash-join,
  /// consumes all of its first input", paper Section 2.2). Every join
  /// boundary then breaks the pipeline, which is what gives mid-query
  /// re-optimization its decision points. Setting this false enables the
  /// modern build-on-smaller-side orientation (ablation).
  bool build_on_left_subtree = true;
  /// Bucket-overlap equi-join estimation (post-1998; ablation only — see
  /// Estimator). Dramatically improves static plans, which shrinks the
  /// opportunity for mid-query re-optimization.
  bool histogram_join_estimation = false;
  /// Probability that a heap fetch during an index probe misses the buffer
  /// pool, as a fraction of table pages over pool pages.
  double pool_pages_hint = 4096;
};

/// Result of an optimization run.
struct OptimizeResult {
  std::unique_ptr<PlanNode> plan;
  /// Number of (partial) plans costed — the DP enumeration effort. The
  /// simulated optimization time is this count times t_opt_per_plan_ms,
  /// mirroring the paper's observation that optimization cost depends on
  /// the number of operators, not data sizes (Section 2.4). For RepairPlan
  /// this counts only the candidates actually (re-)offered — reused memo
  /// entries are free, which is the whole point.
  uint64_t plans_enumerated = 0;
  double sim_opt_time_ms = 0;
  /// Estimates corrected from the cardinality feedback store (empty when
  /// the optimizer runs without one).
  std::vector<FeedbackApplied> feedback_applied;
  /// The DP memo this run built (always populated), ready to be retained by
  /// the query and handed back to RepairPlan at a re-optimization point.
  std::unique_ptr<PlanMemo> memo;
};

/// \brief The conventional query optimizer wrapped by Dynamic Re-Optimization.
class Optimizer {
 public:
  /// `feedback`, when non-null, is consulted by the Estimator before
  /// synthetic statistics (see catalog/feedback_store.h); corrections are
  /// reported in OptimizeResult::feedback_applied.
  Optimizer(const Catalog* catalog, const CostModel* cost,
            OptimizerOptions opts = OptimizerOptions{},
            const CardinalityFeedbackStore* feedback = nullptr)
      : catalog_(catalog), cost_(cost), opts_(opts), feedback_(feedback) {}

  /// Plans a bound query. Supports up to 20 relations. `overrides`
  /// optionally replaces catalog-derived base-relation estimates with
  /// run-time observations (mid-query re-optimization).
  Result<OptimizeResult> Plan(
      const QuerySpec& spec,
      const BaseRelOverrides* overrides = nullptr) const;

  /// Incrementally re-plans `spec` by repairing `retained` (a memo from a
  /// previous Plan/RepairPlan of the *same* spec, possibly translated
  /// through TranslateMemoForRemainder) instead of re-deriving every
  /// subset. Leaves are always re-derived and deep-compared against the
  /// memo; join entries whose leaves all match are moved in verbatim, and
  /// only subsets containing a changed leaf are re-enumerated (lazily:
  /// losing candidates are costed but their plan nodes never built). The
  /// chosen plan and its cost are bit-identical to a from-scratch Plan()
  /// with the same inputs. Falls back to Plan() — reported via
  /// `repair->fell_back` — when the memo is null or the feedback store
  /// changed since it was built. `repair`, when non-null, receives the
  /// invalidation/reuse accounting.
  Result<OptimizeResult> RepairPlan(const QuerySpec& spec,
                                    const BaseRelOverrides* overrides,
                                    std::unique_ptr<PlanMemo> retained,
                                    MemoRepair* repair = nullptr) const;

 private:
  const Catalog* catalog_;
  const CostModel* cost_;
  OptimizerOptions opts_;
  const CardinalityFeedbackStore* feedback_;
};

/// Assigns post-order ids to every node in the plan.
void AssignPlanIds(PlanNode* root);

}  // namespace reoptdb

#endif  // REOPTDB_OPTIMIZER_OPTIMIZER_H_
