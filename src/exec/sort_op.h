// External merge sort.

#ifndef REOPTDB_EXEC_SORT_OP_H_
#define REOPTDB_EXEC_SORT_OP_H_

#include <memory>
#include <optional>
#include <queue>

#include "exec/operator.h"
#include "storage/heap_file.h"

namespace reoptdb {

/// \brief ORDER BY via in-memory sort or external run merge.
///
/// Input rows accumulate up to the memory budget; overflowing input is cut
/// into sorted runs on temp files and merged with a k-way heap.
class SortOp : public Operator {
 public:
  SortOp(ExecContext* ctx, PlanNode* node) : Operator(ctx, node) {}

  Status OpenImpl() override;
  Status BlockingPhaseImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Status CloseImpl() override;

  size_t run_count() const { return runs_.size(); }

 private:
  /// true if a sorts before b.
  bool Less(const Tuple& a, const Tuple& b) const;
  Status FlushRun();

  std::vector<std::pair<size_t, bool>> keys_;  // (column index, ascending)
  double budget_bytes_ = 0;
  /// Budget seen at Open; a smaller current budget means the grant shrank
  /// mid-flight (broker revocation), which attributes the spill reason.
  double open_budget_bytes_ = 0;
  bool built_ = false;

  std::vector<Tuple> rows_;
  double mem_bytes_ = 0;
  std::vector<std::unique_ptr<HeapFile>> runs_;

  // Merge state.
  struct MergeSource {
    HeapFile::Iterator it;
    Tuple current;
    bool valid = false;
  };
  std::vector<MergeSource> sources_;
  std::vector<size_t> heap_;  // indexes into sources_, min-heap by Less
  bool merging_ = false;
  size_t emit_pos_ = 0;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_SORT_OP_H_
