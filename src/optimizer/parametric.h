// Parametric plans — the paper's proposed hybrid (Section 4).
//
// "A hybrid algorithm that combines the parametric/dynamic query plans
// approach [10, 8, 7] and the Dynamic Re-Optimization algorithm could
// possibly combine the best features of both approaches. The query
// optimizer can try to anticipate the most common cases that might arise
// at run-time and produce a parameterized plan that covers these
// possibilities. At query execution time, statistics can be observed to
// determine which plan to choose. If a situation arises that is not
// covered ... dynamic re-optimization can be used."
//
// The compile-time unknown parameterized here is the one the paper calls
// out first: *available memory*. A ParametricPlanSet holds one plan per
// anticipated memory budget; at execution time the branch nearest the
// actual budget is picked, and Dynamic Re-Optimization covers whatever the
// anticipation missed.

#ifndef REOPTDB_OPTIMIZER_PARAMETRIC_H_
#define REOPTDB_OPTIMIZER_PARAMETRIC_H_

#include <memory>
#include <vector>

#include "optimizer/optimizer.h"

namespace reoptdb {

/// One anticipated run-time case.
struct ParametricBranch {
  double assumed_mem_pages = 0;
  std::unique_ptr<PlanNode> plan;
  uint64_t plans_enumerated = 0;
};

/// \brief A set of plans, one per anticipated memory budget.
class ParametricPlanSet {
 public:
  /// Optimizes `spec` once per candidate budget. Candidates must be
  /// non-empty; duplicates are collapsed.
  static Result<ParametricPlanSet> Plan(const Catalog* catalog,
                                        const CostModel* cost,
                                        OptimizerOptions base_options,
                                        const QuerySpec& spec,
                                        std::vector<double> memory_candidates);

  /// The branch whose assumed budget is nearest (in log space) to the
  /// actual budget known at execution time.
  const ParametricBranch& Pick(double actual_mem_pages) const;

  size_t size() const { return branches_.size(); }
  const std::vector<ParametricBranch>& branches() const { return branches_; }

  /// Total simulated optimization time spent building the set (paid once
  /// at prepare time, amortized over executions).
  double total_sim_opt_time_ms() const { return total_sim_opt_time_ms_; }

 private:
  std::vector<ParametricBranch> branches_;  // sorted by assumed budget
  double total_sim_opt_time_ms_ = 0;
};

}  // namespace reoptdb

#endif  // REOPTDB_OPTIMIZER_PARAMETRIC_H_
