// Transaction manager: crash-atomic DML over the WAL and lock manager.
//
// Protocol (redo-only, no-steal, deferred apply):
//  - A statement never touches a heap page. It locks what it will change
//    (table IX, then row X for updates/deletes), then records the change in
//    the transaction's private write set. Reads-your-own-writes come from
//    consulting that write set during the statement's scan.
//  - Commit serializes the write set into WAL redo records plus a commit
//    record, fsyncs them (the durability point), then applies the write set
//    to the heaps and indexes and seals each touched table's tail page.
//    CommitGroup amortizes one fsync over several transactions' records —
//    classic group commit.
//  - Abort (explicit, deadlock victim, timeout, or crash) just discards the
//    write set and releases locks: nothing was applied, so there is nothing
//    to undo.
//
// Recovery truncates every table back to its checkpoint (flushed pages are
// immutable, so this is freeing a page suffix) and re-applies committed
// transactions from the WAL in commit order. Because appends replay in the
// original order, rids — and therefore B+-tree shapes — come out
// bit-identical to a crash-free run; index entries that survived a partial
// apply are detected by Lookup and skipped rather than duplicated.
//
// Durability boundary (documented in DESIGN.md §13): transactional commits
// are durable from their fsync; non-transactional maintenance writes
// (BulkLoad, catalog Insert) become durable at the next checkpoint, which
// Begin() takes lazily whenever such writes happened and no transaction is
// active.

#ifndef REOPTDB_TXN_TXN_MANAGER_H_
#define REOPTDB_TXN_TXN_MANAGER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/fault.h"
#include "common/status.h"
#include "obs/query_trace.h"
#include "parser/statement.h"
#include "txn/lock_manager.h"
#include "txn/wal.h"

namespace reoptdb {

/// Typed log of transaction-layer events (the txn counterpart of
/// QueryTrace; transactions outlive queries, so it lives here).
struct TxnLog {
  std::vector<TxnBeginRecord> begins;
  std::vector<TxnCommitRecord> commits;
  std::vector<TxnAbortRecord> aborts;
  std::vector<LockWaitRecord> lock_waits;
  std::vector<DeadlockVictimRecord> deadlocks;
  std::vector<WalReplayRecord> replays;
};

/// Rows affected by one DML statement.
struct DmlResult {
  uint64_t rows = 0;
};

/// \brief Transactions, checkpoints, and WAL redo recovery.
class TransactionManager {
 public:
  TransactionManager(Catalog* catalog, BufferPool* pool,
                     FaultInjector* faults);

  LockManager* lock_manager() { return &locks_; }
  WriteAheadLog* wal() { return &wal_; }
  TxnLog& log() { return log_; }

  // --- Transaction lifecycle.

  /// Starts a transaction. If non-transactional writes are pending and no
  /// transaction is active, a checkpoint is taken first so those writes
  /// become part of the recovery baseline.
  Result<uint64_t> Begin();

  /// Commits one transaction (group of one).
  Status Commit(uint64_t txn_id, const std::string& client_tag = "");

  /// Group commit: logs every transaction's write set (commit records
  /// last-per-transaction), makes them all durable with ONE fsync, then
  /// applies each in order. On a pre-durability failure the whole group
  /// aborts and the buffered records are discarded — no transaction in the
  /// group is half-committed.
  Status CommitGroup(
      const std::vector<std::pair<uint64_t, std::string>>& txns);

  /// Aborts a transaction: discards its write set and releases its locks.
  Status Abort(uint64_t txn_id, const std::string& reason = "rollback");

  bool IsActive(uint64_t txn_id) const { return active_.count(txn_id) > 0; }
  size_t active_count() const { return active_.size(); }

  // --- DML statements (run under an active transaction).
  //
  // All three return kLockWait when a needed lock is held by another live
  // transaction: the statement had no effect (beyond locks already in the
  // growing phase) and can be re-issued verbatim; the caller charges the
  // wait against its timeout via ChargeLockWait. A deadlock where this
  // transaction is the victim aborts it and returns kCancelled.

  Result<DmlResult> ExecuteInsert(uint64_t txn_id, const InsertAst& ast);
  Result<DmlResult> ExecuteUpdate(uint64_t txn_id, const UpdateAst& ast);
  Result<DmlResult> ExecuteDelete(uint64_t txn_id, const DeleteAst& ast);

  /// Accrues simulated lock-wait time; returns the transaction's total.
  double ChargeLockWait(uint64_t txn_id, double ms);

  // --- Checkpoint / recovery.

  /// Captures a restore point for every base table and truncates the WAL.
  /// Requires no active transactions.
  Status Checkpoint();

  /// Restores every checkpointed table and redoes committed WAL
  /// transactions in commit order. Idempotent: safe to re-run after a
  /// crash mid-recovery. Clears volatile lock/transaction state.
  Status Recover();

  /// Idempotency check for re-submitting clients: true once a commit with
  /// `client_tag` has been fsynced. Host-memory durable — never cleared on
  /// a simulated crash, and independent of WAL truncation.
  bool HasCommitted(const std::string& client_tag) const {
    return committed_tags_.count(client_tag) > 0;
  }

  /// Current commit epoch (drives snapshot visibility of deletes).
  uint64_t commit_epoch() const { return commit_epoch_; }

  /// Non-transactional write happened (BulkLoad, catalog Insert, DDL):
  /// the recovery baseline is stale until the next checkpoint.
  void MarkStorageDirty() { storage_dirty_ = true; }

  /// A table vanished; its restore point (if any) must go with it.
  void OnTableDropped(const std::string& table) {
    checkpoints_.erase(table);
  }

  uint64_t commits_completed() const { return commits_; }
  uint64_t aborts_completed() const { return aborts_; }

  /// Active transactions, held locks, and the WAL tail (\txn).
  std::string Describe() const;

 private:
  struct WriteOp {
    enum class Kind : uint8_t { kInsert, kDelete };
    Kind kind = Kind::kInsert;
    std::string table;
    Tuple tuple;           ///< kInsert payload
    uint64_t rid_key = 0;  ///< kDelete target
  };

  struct Transaction {
    uint64_t id = 0;
    std::vector<WriteOp> ops;
    /// Per-table rid keys this transaction has deleted (scan overlay).
    std::map<std::string, std::set<uint64_t>> deleted;
    double lock_wait_ms = 0;
  };

  struct TableCheckpoint {
    HeapFile::Checkpoint heap;
    TableStats stats;
    /// Commit records with lsn >= this postdate the capture and must be
    /// replayed; older commits are already inside the checkpoint.
    uint64_t min_commit_lsn = 0;
  };

  /// Simple compiled DML predicate (col index, op, literal).
  struct DmlPred {
    size_t col = 0;
    CmpOp op = CmpOp::kEq;
    Value literal;
    bool Eval(const Tuple& t) const;
  };

  Result<Transaction*> GetActive(uint64_t txn_id);

  /// Resolves and type-checks a DML WHERE clause against `schema`.
  Result<std::vector<DmlPred>> CompileWhere(
      const std::vector<PredicateAst>& where, const Schema& schema,
      const std::string& table);

  /// Ensures `table` has a restore point (taken lazily at its first
  /// transactional write, so recovery can truncate partial applies).
  Status EnsureTableCheckpoint(const std::string& table);

  /// Acquire with typed-record bookkeeping. kDeadlockVictim aborts the
  /// transaction before returning.
  Result<LockOutcome> TryLock(Transaction* t, const std::string& resource,
                              LockMode mode);

  /// Collects matched heap rows (latest committed state minus this
  /// transaction's own deletes) and matched pending-insert ops.
  Status MatchRows(Transaction* t, const TableInfo& info,
                   const std::vector<DmlPred>& preds,
                   std::vector<std::pair<Rid, Tuple>>* heap_matches,
                   std::vector<size_t>* pending_matches);

  /// Applies a committed write set at `epoch`. `replay` switches on the
  /// already-present index-entry skip used after a crash.
  Status ApplyWriteSet(uint64_t txn_id, const std::vector<WriteOp>& ops,
                       uint64_t epoch, bool replay, uint64_t* applied,
                       uint64_t* skipped);

  Status AbortInternal(uint64_t txn_id, const std::string& reason);

  Catalog* catalog_;
  BufferPool* pool_;
  FaultInjector* faults_;
  LockManager locks_;
  WriteAheadLog wal_;
  TxnLog log_;

  std::map<uint64_t, Transaction> active_;
  uint64_t next_txn_id_ = 1;
  uint64_t commit_epoch_ = 0;
  uint64_t checkpoint_epoch_ = 0;
  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
  bool storage_dirty_ = false;
  /// Requester behind the in-flight Acquire (for deadlock records).
  uint64_t current_requester_ = 0;

  std::map<std::string, TableCheckpoint> checkpoints_;
  /// Client tags of fsynced commits. Host-memory durable: survives crashes
  /// and WAL truncation (a tag must outlive the log that proved it).
  std::set<std::string> committed_tags_;
};

}  // namespace reoptdb

#endif  // REOPTDB_TXN_TXN_MANAGER_H_
