// Simulated disk with exact I/O accounting.
//
// The paper's measurements (SIGMOD'98 hardware) are dominated by page I/O:
// one-pass vs. two-pass hash joins, extra materializations, wrong join
// orders. We therefore simulate the disk: pages live in host memory, and
// every page read/write increments counters that the cost model converts
// into deterministic "simulated milliseconds". This reproduces the paper's
// result *shapes* independent of 2026 hardware (see DESIGN.md §3).

#ifndef REOPTDB_STORAGE_DISK_MANAGER_H_
#define REOPTDB_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/fault.h"
#include "common/status.h"
#include "storage/page.h"

namespace reoptdb {

/// Monotonic counters of disk traffic.
struct DiskStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;
  uint64_t pages_freed = 0;
  /// Transient-IoError retries (injected faults absorbed by backoff).
  uint64_t io_retries = 0;
  /// Simulated milliseconds spent in retry backoff; folded into the query
  /// clock by ExecContext::SimElapsedMs.
  double retry_penalty_ms = 0;

  DiskStats operator-(const DiskStats& o) const {
    return DiskStats{page_reads - o.page_reads,
                     page_writes - o.page_writes,
                     pages_allocated - o.pages_allocated,
                     pages_freed - o.pages_freed,
                     io_retries - o.io_retries,
                     retry_penalty_ms - o.retry_penalty_ms};
  }

  DiskStats operator+(const DiskStats& o) const {
    return DiskStats{page_reads + o.page_reads,
                     page_writes + o.page_writes,
                     pages_allocated + o.pages_allocated,
                     pages_freed + o.pages_freed,
                     io_retries + o.io_retries,
                     retry_penalty_ms + o.retry_penalty_ms};
  }
};

/// \brief Allocates, reads and writes simulated pages.
///
/// Single-threaded; the engine is a single-query-at-a-time system, like the
/// per-node data server in Paradise.
class DiskManager {
 public:
  DiskManager() = default;
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a zeroed page and returns its id.
  PageId AllocatePage();

  /// Releases a page's storage. Reading a freed page is an error.
  Status FreePage(PageId id);

  /// Copies the page contents into `*out`, charging one read. The page's
  /// stored checksum is verified first; a mismatch is retried like a
  /// transient device error and, if persistent, surfaces as kIoError.
  Status ReadPage(PageId id, Page* out);

  /// Copies `page` to the simulated disk, charging one write.
  Status WritePage(PageId id, const Page& page);

  const DiskStats& stats() const { return stats_; }

  /// Number of live (allocated, not freed) pages.
  size_t live_pages() const { return pages_.size(); }

  /// Fault-injection hook (storage.read / storage.write / storage.free).
  /// Injected kIoError is treated as transient: the operation retries with
  /// bounded exponential backoff (simulated, charged to retry_penalty_ms)
  /// before the error is surfaced to the caller. nullptr disables.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Maximum retries after a transient IoError before it is surfaced.
  static constexpr int kMaxIoRetries = 3;
  /// First-retry backoff in simulated ms; doubles per attempt.
  static constexpr double kRetryBackoffBaseMs = 1.0;

  /// Flips bytes of the stored page without updating its recorded checksum,
  /// modeling on-media corruption. The next ReadPage exhausts its retries
  /// and fails with kIoError. Test-only.
  Status CorruptPageForTesting(PageId id);

 private:
  /// Consults the injector for `point`, absorbing transient faults via the
  /// retry/backoff policy above. OK when nothing is armed.
  Status CheckFault(const char* point);

  std::unordered_map<PageId, std::unique_ptr<Page>> pages_;
  /// Expected checksum per live page, maintained on allocate/write.
  std::unordered_map<PageId, uint64_t> checksums_;
  PageId next_id_ = 0;
  DiskStats stats_;
  FaultInjector* faults_ = nullptr;
};

}  // namespace reoptdb

#endif  // REOPTDB_STORAGE_DISK_MANAGER_H_
