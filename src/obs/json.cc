#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace reoptdb {
namespace obs {

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

JsonValue& JsonValue::Append(JsonValue v) {
  items_.push_back(std::move(v));
  return items_.back();
}

namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Shortest decimal form that parses back to the same double.
void NumberTo(double d, std::string* out) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; clamp to null (trace values should be finite).
    *out += "null";
    return;
  }
  char buf[32];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  *out += buf;
}

}  // namespace

void JsonValue::SerializeTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      NumberTo(num_, out);
      break;
    case Kind::kString:
      EscapeTo(str_, out);
      break;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : items_) {
        if (!first) out->push_back(',');
        first = false;
        v.SerializeTo(out);
      }
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out->push_back(',');
        first = false;
        EscapeTo(k, out);
        out->push_back(':');
        v.SerializeTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<JsonValue> Parse() {
    ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != s_.size())
      return Status::ParseError("json: trailing characters at offset " +
                                std::to_string(pos_));
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  Status Fail(const std::string& what) {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    size_t n = std::char_traits<char>::length(w);
    if (s_.compare(pos_, n, w) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Fail("expected string");
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Fail("bad \\u escape");
          unsigned code = std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // Traces only escape control characters; other code points were
          // written verbatim, so a one-byte cast is faithful here.
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Result<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= s_.size()) return Fail("unexpected end");
    char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      JsonValue obj = JsonValue::MakeObject();
      SkipWs();
      if (Consume('}')) return obj;
      while (true) {
        SkipWs();
        ASSIGN_OR_RETURN(std::string key, ParseString());
        SkipWs();
        if (!Consume(':')) return Fail("expected ':'");
        ASSIGN_OR_RETURN(JsonValue v, ParseValue());
        obj.Set(key, std::move(v));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume('}')) return obj;
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      JsonValue arr = JsonValue::MakeArray();
      SkipWs();
      if (Consume(']')) return arr;
      while (true) {
        ASSIGN_OR_RETURN(JsonValue v, ParseValue());
        arr.Append(std::move(v));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume(']')) return arr;
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::MakeString(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue::MakeBool(true);
    if (ConsumeWord("false")) return JsonValue::MakeBool(false);
    if (ConsumeWord("null")) return JsonValue();
    // Number.
    char* end = nullptr;
    double d = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) return Fail("unexpected character");
    pos_ = static_cast<size_t>(end - s_.c_str());
    return JsonValue::MakeNumber(d);
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace obs
}  // namespace reoptdb
