#include "memory/memory_manager.h"

#include <algorithm>
#include <cmath>

#include "storage/page.h"

namespace reoptdb {

void CollectBlockingOrder(PlanNode* root, std::vector<PlanNode*>* out) {
  switch (root->kind) {
    case OpKind::kHashJoin:
      CollectBlockingOrder(root->children[0].get(), out);
      out->push_back(root);
      CollectBlockingOrder(root->children[1].get(), out);
      break;
    case OpKind::kHashAggregate:
    case OpKind::kSort:
    case OpKind::kMaterialize:
      CollectBlockingOrder(root->children[0].get(), out);
      out->push_back(root);
      break;
    default:
      for (auto& c : root->children) CollectBlockingOrder(c.get(), out);
      break;
  }
}

void MemoryManager::ComputeDemands(PlanNode* node) const {
  switch (node->kind) {
    case OpKind::kHashJoin: {
      double build_pages = node->children[0]->improved.pages;
      node->max_mem_pages = cost_->HashJoinMaxMem(build_pages);
      node->min_mem_pages = cost_->HashJoinMinMem(build_pages);
      break;
    }
    case OpKind::kHashAggregate: {
      double groups =
          node->improved.num_groups > 0 ? node->improved.num_groups : 1;
      double group_bytes = node->output_schema.AvgTupleBytes() + 96;
      node->max_mem_pages = cost_->AggregateMaxMem(groups, group_bytes);
      node->min_mem_pages = cost_->AggregateMinMem(groups, group_bytes);
      break;
    }
    case OpKind::kSort: {
      double pages = node->children[0]->improved.pages;
      node->max_mem_pages = cost_->SortMaxMem(pages);
      node->min_mem_pages = cost_->SortMinMem(pages);
      break;
    }
    default:
      break;
  }
}

bool MemoryManager::Allocate(PlanNode* root,
                             const std::set<int>& frozen_ids) const {
  std::vector<PlanNode*> order;
  CollectBlockingOrder(root, &order);
  std::vector<PlanNode*> consumers;
  double frozen_total = 0;
  for (PlanNode* n : order) {
    if (!n->IsMemoryConsumer()) continue;
    if (frozen_ids.count(n->id)) {
      frozen_total += n->mem_budget_pages;
      continue;
    }
    ComputeDemands(n);
    consumers.push_back(n);
  }
  if (consumers.empty()) return false;

  double budget = std::max(0.0, total_pages_ - frozen_total);

  // Pass 1: everyone gets its minimum (clamped to the budget share).
  std::vector<double> grant(consumers.size());
  double granted = 0;
  for (size_t i = 0; i < consumers.size(); ++i) {
    grant[i] = consumers[i]->min_mem_pages;
    granted += grant[i];
  }
  if (granted > budget) {
    // Not even the minima fit: scale down proportionally (floor 2 pages).
    double scale = budget / granted;
    granted = 0;
    for (double& g : grant) {
      g = std::max(2.0, std::floor(g * scale));
      granted += g;
    }
  }

  // Pass 2: in execution order, upgrade an operator to its maximum if the
  // full upgrade fits; otherwise it keeps its minimum (the paper's policy:
  // the first join gets its maximum, the second only its minimum).
  for (size_t i = 0; i < consumers.size(); ++i) {
    double extra = consumers[i]->max_mem_pages - grant[i];
    if (extra <= 0) continue;
    if (extra <= budget - granted) {
      grant[i] += extra;
      granted += extra;
    }
  }

  // Pass 3: leftover goes to the last operator (the paper hands the
  // remainder to the aggregate at the top).
  double leftover = budget - granted;
  if (leftover > 0 && !consumers.empty())
    grant.back() += leftover;

  bool changed = false;
  for (size_t i = 0; i < consumers.size(); ++i) {
    if (consumers[i]->mem_budget_pages != grant[i]) changed = true;
    consumers[i]->mem_budget_pages = grant[i];
  }
  return changed;
}

}  // namespace reoptdb
