#include "txn/txn_manager.h"

#include <algorithm>

namespace reoptdb {

using Record = WriteAheadLog::Record;

TransactionManager::TransactionManager(Catalog* catalog, BufferPool* pool,
                                       FaultInjector* faults)
    : catalog_(catalog),
      pool_(pool),
      faults_(faults),
      locks_(faults),
      wal_(pool, faults) {
  locks_.set_abort_victim(
      [this](uint64_t victim, const std::string& resource) {
        log_.deadlocks.push_back(DeadlockVictimRecord{
            victim, current_requester_, resource,
            locks_.last_cycle_length()});
        return AbortInternal(victim, "deadlock");
      });
}

bool TransactionManager::DmlPred::Eval(const Tuple& t) const {
  const Value& v = t.at(col);
  if (v.is_string() != literal.is_string()) return false;
  int c = v.Compare(literal);
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

Result<TransactionManager::Transaction*> TransactionManager::GetActive(
    uint64_t txn_id) {
  auto it = active_.find(txn_id);
  if (it == active_.end())
    return Status::InvalidArgument("unknown or finished transaction " +
                                   std::to_string(txn_id));
  return &it->second;
}

Result<uint64_t> TransactionManager::Begin() {
  // Fold pending non-transactional writes into the recovery baseline while
  // it is still cheap (no active transaction to coordinate with).
  if (storage_dirty_ && active_.empty()) RETURN_IF_ERROR(Checkpoint());
  uint64_t id = next_txn_id_++;
  active_.emplace(id, Transaction{id, {}, {}, 0});
  log_.begins.push_back(TxnBeginRecord{id});
  return id;
}

Status TransactionManager::Abort(uint64_t txn_id, const std::string& reason) {
  RETURN_IF_ERROR(GetActive(txn_id).status());
  return AbortInternal(txn_id, reason);
}

Status TransactionManager::AbortInternal(uint64_t txn_id,
                                         const std::string& reason) {
  auto it = active_.find(txn_id);
  if (it == active_.end())
    return Status::Internal("abort of unknown transaction " +
                            std::to_string(txn_id));
  active_.erase(it);  // write set discarded: no-steal, nothing to undo
  locks_.ReleaseAll(txn_id);
  log_.aborts.push_back(TxnAbortRecord{txn_id, reason});
  ++aborts_;
  return Status::OK();
}

double TransactionManager::ChargeLockWait(uint64_t txn_id, double ms) {
  auto it = active_.find(txn_id);
  if (it == active_.end()) return 0;
  it->second.lock_wait_ms += ms;
  return it->second.lock_wait_ms;
}

Result<LockOutcome> TransactionManager::TryLock(Transaction* t,
                                                const std::string& resource,
                                                LockMode mode) {
  uint64_t id = t->id;
  current_requester_ = id;
  Result<LockOutcome> r = locks_.Acquire(id, resource, mode);
  if (!r.ok()) {
    // An injected lock-table failure is a statement failure; the
    // transaction cannot hold a half-built lock set, so it aborts.
    (void)AbortInternal(id, "lock failure: " + r.status().message());
    return r.status();
  }
  if (*r == LockOutcome::kWait) {
    log_.lock_waits.push_back(LockWaitRecord{
        id, locks_.last_conflict_holder(), resource, LockModeName(mode)});
  } else if (*r == LockOutcome::kDeadlockVictim) {
    log_.deadlocks.push_back(DeadlockVictimRecord{
        id, id, resource, locks_.last_cycle_length()});
    RETURN_IF_ERROR(AbortInternal(id, "deadlock"));
    // `t` is gone now; callers must return without touching it.
  }
  return r;
}

Result<std::vector<TransactionManager::DmlPred>>
TransactionManager::CompileWhere(const std::vector<PredicateAst>& where,
                                 const Schema& schema,
                                 const std::string& table) {
  std::vector<DmlPred> preds;
  for (const PredicateAst& p : where) {
    const auto* colref = std::get_if<ColumnRefAst>(&p.lhs);
    const auto* lit = std::get_if<Value>(&p.rhs);
    if (colref == nullptr || lit == nullptr)
      return Status::InvalidArgument(
          "DML WHERE supports only `column cmp literal` conjuncts");
    ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(colref->name));
    bool want_str = schema.column(idx).type == ValueType::kString;
    if (want_str != lit->is_string())
      return Status::InvalidArgument("WHERE type mismatch in column " +
                                     colref->name + " of " + table);
    preds.push_back(DmlPred{idx, p.op, *lit});
  }
  return preds;
}

Status TransactionManager::EnsureTableCheckpoint(const std::string& table) {
  if (checkpoints_.count(table)) return Status::OK();
  ASSIGN_OR_RETURN(TableInfo * info, catalog_->Get(table));
  // Seal the tail so the restore point covers only immutable pages. Every
  // commit postdating this capture has lsn >= next_lsn and gets replayed;
  // everything older is already inside the captured pages.
  RETURN_IF_ERROR(info->heap->Flush());
  ASSIGN_OR_RETURN(HeapFile::Checkpoint cp, info->heap->CaptureCheckpoint());
  checkpoints_[table] =
      TableCheckpoint{std::move(cp), info->stats, wal_.next_lsn()};
  return Status::OK();
}

Status TransactionManager::MatchRows(
    Transaction* t, const TableInfo& info, const std::vector<DmlPred>& preds,
    std::vector<std::pair<Rid, Tuple>>* heap_matches,
    std::vector<size_t>* pending_matches) {
  auto own_deleted = t->deleted.find(info.name);
  HeapFile::Iterator it = info.heap->Scan();
  Tuple tup;
  while (true) {
    ASSIGN_OR_RETURN(bool more, it.Next(&tup));
    if (!more) break;
    const Rid& rid = it.last_rid();
    if (own_deleted != t->deleted.end() &&
        own_deleted->second.count(HeapFile::RidKey(rid)))
      continue;  // already deleted by this transaction
    bool match = true;
    for (const DmlPred& p : preds)
      if (!p.Eval(tup)) {
        match = false;
        break;
      }
    if (match) heap_matches->emplace_back(rid, tup);
  }
  for (size_t i = 0; i < t->ops.size(); ++i) {
    const WriteOp& op = t->ops[i];
    if (op.kind != WriteOp::Kind::kInsert || op.table != info.name) continue;
    bool match = true;
    for (const DmlPred& p : preds)
      if (!p.Eval(op.tuple)) {
        match = false;
        break;
      }
    if (match) pending_matches->push_back(i);
  }
  return Status::OK();
}

Result<DmlResult> TransactionManager::ExecuteInsert(uint64_t txn_id,
                                                    const InsertAst& ast) {
  ASSIGN_OR_RETURN(Transaction * t, GetActive(txn_id));
  ASSIGN_OR_RETURN(TableInfo * info, catalog_->Get(ast.table));
  if (info->is_temp)
    return Status::InvalidArgument("DML requires a base table: " + ast.table);
  for (const std::vector<Value>& row : ast.rows) {
    if (row.size() != info->schema.NumColumns())
      return Status::InvalidArgument("INSERT arity mismatch for " +
                                     ast.table);
    for (size_t i = 0; i < row.size(); ++i) {
      bool want_str = info->schema.column(i).type == ValueType::kString;
      if (want_str != row[i].is_string())
        return Status::InvalidArgument("INSERT type mismatch in column " +
                                       info->schema.column(i).name);
    }
  }
  RETURN_IF_ERROR(EnsureTableCheckpoint(ast.table));
  ASSIGN_OR_RETURN(
      LockOutcome got,
      TryLock(t, LockManager::TableResource(ast.table), LockMode::kIX));
  if (got == LockOutcome::kWait)
    return Status::LockWait("txn " + std::to_string(txn_id) +
                            " waiting for table lock on " + ast.table);
  if (got == LockOutcome::kDeadlockVictim)
    return Status::Cancelled("deadlock victim: txn " +
                             std::to_string(txn_id) + " aborted");
  for (const std::vector<Value>& row : ast.rows) {
    WriteOp op;
    op.kind = WriteOp::Kind::kInsert;
    op.table = ast.table;
    op.tuple = Tuple(row);
    t->ops.push_back(std::move(op));
  }
  return DmlResult{ast.rows.size()};
}

Result<DmlResult> TransactionManager::ExecuteUpdate(uint64_t txn_id,
                                                    const UpdateAst& ast) {
  ASSIGN_OR_RETURN(Transaction * t, GetActive(txn_id));
  ASSIGN_OR_RETURN(TableInfo * info, catalog_->Get(ast.table));
  if (info->is_temp)
    return Status::InvalidArgument("DML requires a base table: " + ast.table);
  std::vector<std::pair<size_t, Value>> sets;
  for (const auto& [col, val] : ast.sets) {
    ASSIGN_OR_RETURN(size_t idx, info->schema.IndexOf(col));
    bool want_str = info->schema.column(idx).type == ValueType::kString;
    if (want_str != val.is_string())
      return Status::InvalidArgument("UPDATE type mismatch in column " + col);
    sets.emplace_back(idx, val);
  }
  ASSIGN_OR_RETURN(std::vector<DmlPred> preds,
                   CompileWhere(ast.where, info->schema, ast.table));
  RETURN_IF_ERROR(EnsureTableCheckpoint(ast.table));
  ASSIGN_OR_RETURN(
      LockOutcome got,
      TryLock(t, LockManager::TableResource(ast.table), LockMode::kIX));
  if (got == LockOutcome::kWait)
    return Status::LockWait("txn " + std::to_string(txn_id) +
                            " waiting for table lock on " + ast.table);
  if (got == LockOutcome::kDeadlockVictim)
    return Status::Cancelled("deadlock victim: txn " +
                             std::to_string(txn_id) + " aborted");

  std::vector<std::pair<Rid, Tuple>> heap_matches;
  std::vector<size_t> pending_matches;
  RETURN_IF_ERROR(MatchRows(t, *info, preds, &heap_matches,
                            &pending_matches));
  for (const auto& [rid, tup] : heap_matches) {
    std::string res =
        LockManager::RowResource(ast.table, HeapFile::RidKey(rid));
    ASSIGN_OR_RETURN(LockOutcome row_got, TryLock(t, res, LockMode::kX));
    if (row_got == LockOutcome::kWait)
      return Status::LockWait("txn " + std::to_string(txn_id) +
                              " waiting for " + res);
    if (row_got == LockOutcome::kDeadlockVictim)
      return Status::Cancelled("deadlock victim: txn " +
                               std::to_string(txn_id) + " aborted");
  }

  // All locks held: the statement now applies atomically to the write set.
  // UPDATE is delete + re-insert, so an updated row moves to a fresh rid
  // (stale index entries are filtered by the heap's delete map).
  for (auto& [rid, tup] : heap_matches) {
    uint64_t key = HeapFile::RidKey(rid);
    WriteOp del;
    del.kind = WriteOp::Kind::kDelete;
    del.table = ast.table;
    del.rid_key = key;
    t->ops.push_back(std::move(del));
    t->deleted[ast.table].insert(key);
    Tuple nt = tup;
    for (const auto& [idx, val] : sets) nt.at(idx) = val;
    WriteOp ins;
    ins.kind = WriteOp::Kind::kInsert;
    ins.table = ast.table;
    ins.tuple = std::move(nt);
    t->ops.push_back(std::move(ins));
  }
  for (size_t i : pending_matches)
    for (const auto& [idx, val] : sets) t->ops[i].tuple.at(idx) = val;
  return DmlResult{heap_matches.size() + pending_matches.size()};
}

Result<DmlResult> TransactionManager::ExecuteDelete(uint64_t txn_id,
                                                    const DeleteAst& ast) {
  ASSIGN_OR_RETURN(Transaction * t, GetActive(txn_id));
  ASSIGN_OR_RETURN(TableInfo * info, catalog_->Get(ast.table));
  if (info->is_temp)
    return Status::InvalidArgument("DML requires a base table: " + ast.table);
  ASSIGN_OR_RETURN(std::vector<DmlPred> preds,
                   CompileWhere(ast.where, info->schema, ast.table));
  RETURN_IF_ERROR(EnsureTableCheckpoint(ast.table));
  ASSIGN_OR_RETURN(
      LockOutcome got,
      TryLock(t, LockManager::TableResource(ast.table), LockMode::kIX));
  if (got == LockOutcome::kWait)
    return Status::LockWait("txn " + std::to_string(txn_id) +
                            " waiting for table lock on " + ast.table);
  if (got == LockOutcome::kDeadlockVictim)
    return Status::Cancelled("deadlock victim: txn " +
                             std::to_string(txn_id) + " aborted");

  std::vector<std::pair<Rid, Tuple>> heap_matches;
  std::vector<size_t> pending_matches;
  RETURN_IF_ERROR(MatchRows(t, *info, preds, &heap_matches,
                            &pending_matches));
  for (const auto& [rid, tup] : heap_matches) {
    std::string res =
        LockManager::RowResource(ast.table, HeapFile::RidKey(rid));
    ASSIGN_OR_RETURN(LockOutcome row_got, TryLock(t, res, LockMode::kX));
    if (row_got == LockOutcome::kWait)
      return Status::LockWait("txn " + std::to_string(txn_id) +
                              " waiting for " + res);
    if (row_got == LockOutcome::kDeadlockVictim)
      return Status::Cancelled("deadlock victim: txn " +
                               std::to_string(txn_id) + " aborted");
  }

  for (const auto& [rid, tup] : heap_matches) {
    uint64_t key = HeapFile::RidKey(rid);
    WriteOp del;
    del.kind = WriteOp::Kind::kDelete;
    del.table = ast.table;
    del.rid_key = key;
    t->ops.push_back(std::move(del));
    t->deleted[ast.table].insert(key);
  }
  // A deleted never-committed insert simply never happened: remove the
  // pending ops (descending index order keeps the remaining indexes valid).
  std::sort(pending_matches.rbegin(), pending_matches.rend());
  for (size_t i : pending_matches)
    t->ops.erase(t->ops.begin() + static_cast<ptrdiff_t>(i));
  return DmlResult{heap_matches.size() + pending_matches.size()};
}

Status TransactionManager::Commit(uint64_t txn_id,
                                  const std::string& client_tag) {
  return CommitGroup({{txn_id, client_tag}});
}

Status TransactionManager::CommitGroup(
    const std::vector<std::pair<uint64_t, std::string>>& txns) {
  if (txns.empty()) return Status::OK();
  for (const auto& [id, tag] : txns)
    RETURN_IF_ERROR(GetActive(id).status());

  uint64_t epoch_before = commit_epoch_;
  // Pre-durability failure: nothing reached the disk, so the whole group
  // aborts cleanly — discard the buffered records and hand back the epochs.
  auto fail = [&](Status st) {
    wal_.DiscardUnflushed();
    commit_epoch_ = epoch_before;
    for (const auto& [id, tag] : txns)
      if (IsActive(id))
        (void)AbortInternal(id, "commit failed: " + st.message());
    return st;
  };

  struct Planned {
    uint64_t id = 0;
    std::string tag;
    uint64_t epoch = 0;
    uint64_t wal_records = 0;
  };
  std::vector<Planned> planned;

  // Phase 1 — log: each transaction's redo records, commit record last,
  // so a lost suffix always loses the commit record first.
  for (const auto& [id, tag] : txns) {
    if (faults_ != nullptr) {
      Status st = faults_->Check(faults::kTxnCommit);
      if (!st.ok()) {
        if (st.code() == StatusCode::kCrashed) return st;
        return fail(std::move(st));
      }
    }
    Transaction& t = active_[id];
    uint64_t epoch = ++commit_epoch_;
    for (const WriteOp& op : t.ops) {
      Record rec;
      rec.txn_id = id;
      rec.table = op.table;
      if (op.kind == WriteOp::Kind::kInsert) {
        rec.kind = Record::Kind::kInsert;
        op.tuple.SerializeTo(&rec.payload);
      } else {
        rec.kind = Record::Kind::kDelete;
        rec.payload = WriteAheadLog::EncodeU64(op.rid_key);
      }
      Result<uint64_t> lsn = wal_.Append(std::move(rec));
      if (!lsn.ok()) {
        if (lsn.status().code() == StatusCode::kCrashed)
          return lsn.status();
        return fail(lsn.status());
      }
    }
    Record commit;
    commit.txn_id = id;
    commit.kind = Record::Kind::kCommit;
    commit.payload = WriteAheadLog::EncodeU64(epoch);
    commit.client_tag = tag;
    Result<uint64_t> lsn = wal_.Append(std::move(commit));
    if (!lsn.ok()) {
      if (lsn.status().code() == StatusCode::kCrashed) return lsn.status();
      return fail(lsn.status());
    }
    planned.push_back(Planned{id, tag, epoch, t.ops.size() + 1});
  }

  // Phase 2 — durability point: one fsync for the whole group.
  {
    Status st = wal_.Fsync(txns.front().first);
    if (!st.ok()) {
      if (st.code() == StatusCode::kCrashed) return st;
      return fail(std::move(st));
    }
  }
  for (const Planned& p : planned)
    if (!p.tag.empty()) committed_tags_.insert(p.tag);

  // Phase 3 — apply. The commits are durable; a crash from here on is
  // repaired by Recover() (restore checkpoint, redo from the WAL). A
  // non-crash failure leaves storage needing the same recovery, so it
  // propagates instead of pretending to abort.
  for (const Planned& p : planned) {
    Transaction& t = active_[p.id];
    uint64_t applied = 0, skipped = 0;
    RETURN_IF_ERROR(ApplyWriteSet(p.id, t.ops, p.epoch, /*replay=*/false,
                                  &applied, &skipped));
    uint64_t rows_changed = t.ops.size();
    locks_.ReleaseAll(p.id);
    active_.erase(p.id);
    log_.commits.push_back(
        TxnCommitRecord{p.id, p.epoch, p.wal_records, rows_changed, p.tag});
    ++commits_;
  }
  return Status::OK();
}

Status TransactionManager::ApplyWriteSet(uint64_t txn_id,
                                         const std::vector<WriteOp>& ops,
                                         uint64_t epoch, bool replay,
                                         uint64_t* applied,
                                         uint64_t* skipped) {
  (void)txn_id;
  std::map<std::string, uint64_t> changed;
  for (const WriteOp& op : ops) {
    ASSIGN_OR_RETURN(TableInfo * info, catalog_->Get(op.table));
    if (op.kind == WriteOp::Kind::kInsert) {
      ASSIGN_OR_RETURN(Rid rid, info->heap->Append(op.tuple));
      for (const auto& [col, tree] : info->indexes) {
        ASSIGN_OR_RETURN(size_t idx, info->schema.IndexOf(col));
        int64_t key = op.tuple.at(idx).AsInt();
        if (replay) {
          // A crash mid-apply may have left this entry behind; appends
          // replay in the original order, so (key, rid) pairs — and hence
          // tree shapes — match the crash-free run exactly, and an entry
          // that is already present is this one.
          std::vector<Rid> existing;
          RETURN_IF_ERROR(tree->Lookup(key, &existing));
          if (std::find(existing.begin(), existing.end(), rid) !=
              existing.end()) {
            ++*skipped;
            continue;
          }
        }
        RETURN_IF_ERROR(tree->Insert(key, rid));
      }
    } else {
      Rid rid{static_cast<uint32_t>(op.rid_key >> 32),
              static_cast<uint32_t>(op.rid_key & 0xffffffffu)};
      RETURN_IF_ERROR(info->heap->MarkDeleted(rid, epoch));
    }
    ++*applied;
    ++changed[op.table];
  }
  // Seal every touched table's tail: page packing becomes a deterministic
  // function of the commit sequence, which is what lets the chaos harness
  // compare live page counts bit-for-bit against the serial oracle.
  for (const auto& [table, n] : changed) {
    ASSIGN_OR_RETURN(TableInfo * info, catalog_->Get(table));
    RETURN_IF_ERROR(info->heap->Flush());
    double rows = info->stats.row_count;
    RETURN_IF_ERROR(catalog_->BumpUpdateActivity(
        table, static_cast<double>(n) / std::max(1.0, rows)));
  }
  return Status::OK();
}

Status TransactionManager::Checkpoint() {
  if (!active_.empty())
    return Status::InvalidArgument(
        "checkpoint requires no active transactions");
  for (const std::string& name : catalog_->TableNames()) {
    ASSIGN_OR_RETURN(TableInfo * info, catalog_->Get(name));
    if (info->is_temp) continue;  // journal-managed, never WAL-logged
    RETURN_IF_ERROR(info->heap->Flush());
    ASSIGN_OR_RETURN(HeapFile::Checkpoint cp,
                     info->heap->CaptureCheckpoint());
    checkpoints_[name] =
        TableCheckpoint{std::move(cp), info->stats, wal_.next_lsn()};
  }
  checkpoint_epoch_ = commit_epoch_;
  // Truncation failure is benign: stale records older than every table's
  // min_commit_lsn are filtered at replay; a retrying checkpoint finishes
  // the job.
  RETURN_IF_ERROR(wal_.Truncate());
  storage_dirty_ = false;
  return Status::OK();
}

Status TransactionManager::Recover() {
  // Volatile state died with the "process".
  wal_.DiscardUnflushed();
  locks_.Reset();
  for (const auto& [id, t] : active_)
    log_.aborts.push_back(TxnAbortRecord{id, "crash"});
  active_.clear();

  WalReplayRecord rep;
  // Always restore first, even when re-entering after a crash mid-replay:
  // RestoreCheckpoint is idempotent, and re-truncating partial replay
  // effects is what makes the redo pass safe to repeat.
  for (const auto& [table, tcp] : checkpoints_) {
    Result<TableInfo*> info = catalog_->Get(table);
    if (!info.ok()) continue;  // dropped since; its records are skipped too
    RETURN_IF_ERROR((*info)->heap->RestoreCheckpoint(tcp.heap));
    (*info)->stats = tcp.stats;
    ++rep.tables_restored;
  }
  commit_epoch_ = checkpoint_epoch_;

  ASSIGN_OR_RETURN(std::vector<Record> records, wal_.ReadAll());
  std::map<uint64_t, std::vector<const Record*>> pending;
  for (const Record& r : records) {
    if (r.kind != Record::Kind::kCommit) {
      pending[r.txn_id].push_back(&r);
      continue;
    }
    ASSIGN_OR_RETURN(uint64_t epoch, WriteAheadLog::DecodeU64(r.payload));
    std::vector<WriteOp> ops;
    for (const Record* pr : pending[r.txn_id]) {
      auto cp = checkpoints_.find(pr->table);
      if (cp == checkpoints_.end() || r.lsn < cp->second.min_commit_lsn ||
          !catalog_->Exists(pr->table)) {
        // Older than the table's restore point (already inside it) or the
        // table is gone.
        ++rep.records_skipped;
        continue;
      }
      WriteOp op;
      op.table = pr->table;
      if (pr->kind == Record::Kind::kInsert) {
        op.kind = WriteOp::Kind::kInsert;
        size_t off = 0;
        ASSIGN_OR_RETURN(op.tuple,
                         Tuple::Deserialize(pr->payload.data(),
                                            pr->payload.size(), &off));
      } else {
        op.kind = WriteOp::Kind::kDelete;
        ASSIGN_OR_RETURN(op.rid_key,
                         WriteAheadLog::DecodeU64(pr->payload));
      }
      ops.push_back(std::move(op));
    }
    pending.erase(r.txn_id);
    uint64_t applied = 0, skipped = 0;
    RETURN_IF_ERROR(ApplyWriteSet(r.txn_id, ops, epoch, /*replay=*/true,
                                  &applied, &skipped));
    rep.records_applied += applied;
    rep.records_skipped += skipped;
    commit_epoch_ = std::max(commit_epoch_, epoch);
    if (!r.client_tag.empty()) committed_tags_.insert(r.client_tag);
    ++rep.committed_txns;
  }
  for (const auto& [id, v] : pending)
    rep.records_skipped += v.size();  // uncommitted: correctly invisible
  log_.replays.push_back(rep);
  return Status::OK();
}

std::string TransactionManager::Describe() const {
  std::string out = std::to_string(active_.size()) + " active txn(s), " +
                    std::to_string(commits_) + " commit(s), " +
                    std::to_string(aborts_) + " abort(s), epoch " +
                    std::to_string(commit_epoch_) + "\n";
  for (const auto& [id, t] : active_) {
    out += "txn " + std::to_string(id) + ": " +
           std::to_string(t.ops.size()) + " buffered op(s), lock wait " +
           std::to_string(t.lock_wait_ms) + "ms\n";
    for (const std::string& held : locks_.HeldBy(id))
      out += "  holds " + held + "\n";
  }
  out += locks_.Describe();
  out += wal_.Describe();
  return out;
}

}  // namespace reoptdb
