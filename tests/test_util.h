// Shared helpers for reoptdb tests.

#ifndef REOPTDB_TESTS_TEST_UTIL_H_
#define REOPTDB_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "engine/database.h"
#include "gtest/gtest.h"

namespace reoptdb {
namespace testing_util {

/// Asserts a Status is OK with a useful message.
#define REOPTDB_ASSERT_OK(expr)                                   \
  do {                                                            \
    ::reoptdb::Status _st = (expr);                               \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                      \
  } while (0)

#define REOPTDB_EXPECT_OK(expr)                                   \
  do {                                                            \
    ::reoptdb::Status _st = (expr);                               \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                      \
  } while (0)

/// Canonical form of a result set: one string per row, sorted (queries
/// without ORDER BY have no defined row order). Doubles are rounded to
/// make hash-order-independent aggregates comparable.
inline std::vector<std::string> Canon(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::string s;
    for (size_t i = 0; i < t.size(); ++i) {
      const Value& v = t.at(i);
      if (i) s += "|";
      if (v.is_double()) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", v.AsDouble());
        s += buf;
      } else {
        s += v.ToString();
      }
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Builds a small two-table database:
///   emp(emp_id INT key, dept_id INT, salary DOUBLE, name STRING)
///   dept(dept_id INT key, dept_name STRING, region_id INT)
/// with `nemp` employees spread over `ndept` departments.
inline void LoadEmpDept(Database* db, int nemp = 200, int ndept = 10) {
  Schema emp(std::vector<Column>{{"", "emp_id", ValueType::kInt64, 8},
                                 {"", "dept_id", ValueType::kInt64, 8},
                                 {"", "salary", ValueType::kDouble, 8},
                                 {"", "name", ValueType::kString, 10}});
  Schema dept(std::vector<Column>{{"", "dept_id", ValueType::kInt64, 8},
                                  {"", "dept_name", ValueType::kString, 10},
                                  {"", "region_id", ValueType::kInt64, 8}});
  ASSERT_TRUE(db->CreateTable("emp", emp).ok());
  ASSERT_TRUE(db->CreateTable("dept", dept).ok());
  for (int i = 0; i < nemp; ++i) {
    ASSERT_TRUE(db->Insert("emp", Tuple({Value(int64_t{i}),
                                         Value(int64_t{i % ndept}),
                                         Value(1000.0 + i * 10),
                                         Value("emp" + std::to_string(i))}))
                    .ok());
  }
  for (int d = 0; d < ndept; ++d) {
    ASSERT_TRUE(db->Insert("dept", Tuple({Value(int64_t{d}),
                                          Value("dept" + std::to_string(d)),
                                          Value(int64_t{d % 3})}))
                    .ok());
  }
  ASSERT_TRUE(db->DeclareKey("emp", "emp_id").ok());
  ASSERT_TRUE(db->DeclareKey("dept", "dept_id").ok());
  ASSERT_TRUE(db->Analyze("emp").ok());
  ASSERT_TRUE(db->Analyze("dept").ok());
}

}  // namespace testing_util
}  // namespace reoptdb

#endif  // REOPTDB_TESTS_TEST_UTIL_H_
