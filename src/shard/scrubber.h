// Anti-entropy scrubber: background integrity pass over every copy of
// every sharded table (DESIGN.md §16).
//
// Silent corruption is the failure RAID-style redundancy cannot see: the
// device acks the write, the bytes rot, and nothing notices until a query
// reads garbage. The scrubber closes that window by walking each
// (table, node, role) copy — the primary partition heap and each
// `__replica_<table>` heap — and checking it two ways:
//
//   data-loss   — the physical scan itself fails its page checksum
//                 (DiskManager reports kDataLoss after one confirming
//                 re-read): bit-rot on the node's media.
//   divergence  — the pages read fine but the copy's content checksum
//                 (chained per-row hash over the base columns, in append-
//                 ordinal order) disagrees with the coordinator's durable
//                 copy, or an expected slice is missing entirely: a lost or
//                 misdirected write.
//
// A flagged copy is quarantined (dropped wholesale — a copy that lied once
// is not worth per-page salvage at simulation scale) and rebuilt from the
// first healthy holder of each slice: another replica or the primary where
// one survives, the coordinator heap as last resort. Repair I/O is charged
// to the simulated clocks like any other work. Every finding bumps the
// cluster's scrub-findings counter, which the reoptimizer watches to force
// journal revalidation before trusting materialized temps (Eq.2 site).
//
// Stale rows whose ordinal a copy no longer owns (left behind by replica
// promotion) are ignored, not flagged: ownership lives in the directory,
// and the checksums are computed over the owned ordinal set only.

#ifndef REOPTDB_SHARD_SCRUBBER_H_
#define REOPTDB_SHARD_SCRUBBER_H_

#include <string>
#include <vector>

#include "obs/query_trace.h"
#include "shard/shard_cluster.h"

namespace reoptdb {

/// Outcome of one scrub pass.
struct ScrubSummary {
  /// (table, node, role) copies whose checksums were verified.
  uint64_t copies_checked = 0;
  /// Copies flagged (data-loss or divergence).
  uint64_t findings = 0;
  /// Flagged copies successfully rebuilt.
  uint64_t repaired = 0;
  /// Rows the repair had to re-read from the coordinator because no
  /// healthy node-local copy survived.
  uint64_t coordinator_rows = 0;
  /// Simulated cost of the pass (verification scans + repair I/O; nodes
  /// scrub in parallel, so node time is the max, not the sum). The caller
  /// decides where to charge it (cluster makespan, between-stage budget).
  double sim_ms = 0;
  /// One record per finding / per rebuilt copy, for the query trace.
  std::vector<ScrubReportRecord> reports;
  std::vector<ReplicaRepairRecord> repairs;
};

/// \brief Cross-replica integrity checker and repair engine.
class Scrubber {
 public:
  explicit Scrubber(ShardCluster* cluster) : cluster_(cluster) {}

  /// Scrubs every sharded table. Findings bump the cluster's
  /// scrub-findings counter (ShardCluster::scrub_findings).
  Result<ScrubSummary> ScrubAll();

  /// Scrubs one table (same contract as ScrubAll).
  Result<ScrubSummary> ScrubTable(const std::string& table);

 private:
  /// Checks and repairs every copy of `table`, accumulating into `*sum`
  /// (cost accounting is the caller's).
  Status ScrubTableInto(const std::string& table, ScrubSummary* sum);

  /// Wraps ScrubTableInto calls with cost capture + findings accounting.
  Result<ScrubSummary> RunPass(const std::vector<std::string>& tables);

  ShardCluster* cluster_;
};

}  // namespace reoptdb

#endif  // REOPTDB_SHARD_SCRUBBER_H_
