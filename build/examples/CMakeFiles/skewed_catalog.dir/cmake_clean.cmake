file(REMOVE_RECURSE
  "CMakeFiles/skewed_catalog.dir/skewed_catalog.cpp.o"
  "CMakeFiles/skewed_catalog.dir/skewed_catalog.cpp.o.d"
  "skewed_catalog"
  "skewed_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skewed_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
