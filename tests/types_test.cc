// Tests for Value / Schema / Tuple.

#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace reoptdb {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  Value i(int64_t{42}), d(3.5), s("hi");
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt(), 42);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 3.5);
  EXPECT_EQ(s.AsString(), "hi");
  EXPECT_DOUBLE_EQ(i.AsNumeric(), 42.0);
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(int64_t{2})), 0);
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(int64_t{2})), 0);
  EXPECT_GT(Value(2.5).Compare(Value(2.0)), 0);
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("x").Compare(Value("x")), 0);
}

TEST(ValueTest, MixedNumericComparesByValue) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{2}).Compare(Value(2.5)), 0);
  EXPECT_GT(Value(3.0).Compare(Value(int64_t{2})), 0);
}

TEST(ValueTest, OperatorSugar) {
  EXPECT_TRUE(Value(int64_t{1}) < Value(int64_t{2}));
  EXPECT_TRUE(Value(int64_t{2}) <= Value(int64_t{2}));
  EXPECT_TRUE(Value(int64_t{3}) > Value(int64_t{2}));
  EXPECT_TRUE(Value("a") != Value("b"));
  EXPECT_TRUE(Value(1.0) == Value(int64_t{1}));
}

TEST(ValueTest, HashEqualValuesHashEqually) {
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(int64_t{7}).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  // Integral double hashes like the equivalent int (numeric equi-joins).
  EXPECT_EQ(Value(7.0).Hash(), Value(int64_t{7}).Hash());
}

TEST(ValueTest, HashSpreads) {
  int collisions = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    if ((Value(i).Hash() & 0xff) == (Value(i + 1).Hash() & 0xff)) ++collisions;
  }
  EXPECT_LT(collisions, 40);  // ~1000/256 expected
}

class ValueRoundTripTest : public ::testing::TestWithParam<Value> {};

TEST_P(ValueRoundTripTest, SerializeDeserialize) {
  const Value& v = GetParam();
  std::string buf;
  v.SerializeTo(&buf);
  EXPECT_EQ(buf.size(), v.SerializedSize());
  size_t offset = 0;
  Result<Value> back = Value::Deserialize(buf.data(), buf.size(), &offset);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(offset, buf.size());
  EXPECT_EQ(back.value().type(), v.type());
  EXPECT_TRUE(back.value() == v);
}

INSTANTIATE_TEST_SUITE_P(
    Values, ValueRoundTripTest,
    ::testing::Values(Value(int64_t{0}), Value(int64_t{-1}),
                      Value(int64_t{1234567890123}), Value(0.0), Value(-2.5),
                      Value(1e308), Value(""), Value("x"),
                      Value(std::string(300, 'q'))));

TEST(ValueTest, DeserializeTruncatedFails) {
  std::string buf;
  Value(int64_t{99}).SerializeTo(&buf);
  size_t offset = 0;
  EXPECT_FALSE(Value::Deserialize(buf.data(), buf.size() - 1, &offset).ok());
}

TEST(ValueTest, DeserializeBadTagFails) {
  std::string buf = "\x09garbage";
  size_t offset = 0;
  EXPECT_FALSE(Value::Deserialize(buf.data(), buf.size(), &offset).ok());
}

TEST(SchemaTest, IndexOfBareAndQualified) {
  Schema s(std::vector<Column>{{"t", "a", ValueType::kInt64, 8},
                               {"t", "b", ValueType::kString, 10},
                               {"u", "c", ValueType::kDouble, 8}});
  EXPECT_EQ(s.IndexOf("a").value(), 0u);
  EXPECT_EQ(s.IndexOf("t.b").value(), 1u);
  EXPECT_EQ(s.IndexOf("u.c").value(), 2u);
  EXPECT_FALSE(s.IndexOf("t.c").ok());
  EXPECT_FALSE(s.IndexOf("zzz").ok());
}

TEST(SchemaTest, AmbiguousBareNameFails) {
  Schema s(std::vector<Column>{{"t", "a", ValueType::kInt64, 8},
                               {"u", "a", ValueType::kInt64, 8}});
  Result<size_t> r = s.IndexOf("a");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
  EXPECT_TRUE(s.IndexOf("t.a").ok());
  EXPECT_TRUE(s.IndexOf("u.a").ok());
}

TEST(SchemaTest, ConcatPreservesOrder) {
  Schema a(std::vector<Column>{{"t", "x", ValueType::kInt64, 8}});
  Schema b(std::vector<Column>{{"u", "y", ValueType::kInt64, 8}});
  Schema c = Schema::Concat(a, b);
  ASSERT_EQ(c.NumColumns(), 2u);
  EXPECT_EQ(c.column(0).QualifiedName(), "t.x");
  EXPECT_EQ(c.column(1).QualifiedName(), "u.y");
}

TEST(SchemaTest, AvgTupleBytes) {
  Schema s(std::vector<Column>{{"t", "a", ValueType::kInt64, 8},
                               {"t", "b", ValueType::kString, 12}});
  EXPECT_DOUBLE_EQ(s.AvgTupleBytes(), 8 + 1 + 12 + 1);
}

TEST(TupleTest, RoundTrip) {
  Tuple t({Value(int64_t{1}), Value(2.5), Value("three")});
  std::string buf;
  t.SerializeTo(&buf);
  EXPECT_EQ(buf.size(), t.SerializedSize());
  size_t offset = 0;
  Result<Tuple> back = Tuple::Deserialize(buf.data(), buf.size(), &offset);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 3u);
  EXPECT_TRUE(back.value().at(0) == t.at(0));
  EXPECT_TRUE(back.value().at(1) == t.at(1));
  EXPECT_TRUE(back.value().at(2) == t.at(2));
}

TEST(TupleTest, RoundTripRandomProperty) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Value> vals;
    int n = static_cast<int>(rng.NextBelow(8));
    for (int i = 0; i < n; ++i) {
      switch (rng.NextBelow(3)) {
        case 0:
          vals.push_back(Value(rng.NextInt(-1000000, 1000000)));
          break;
        case 1:
          vals.push_back(Value(rng.NextDouble(-1e6, 1e6)));
          break;
        default: {
          std::string s(rng.NextBelow(20), 'a');
          for (char& c : s) c = static_cast<char>('a' + rng.NextBelow(26));
          vals.push_back(Value(std::move(s)));
        }
      }
    }
    Tuple t(vals);
    std::string buf;
    t.SerializeTo(&buf);
    size_t offset = 0;
    Result<Tuple> back = Tuple::Deserialize(buf.data(), buf.size(), &offset);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back.value().size(), t.size());
    for (size_t i = 0; i < t.size(); ++i)
      EXPECT_TRUE(back.value().at(i) == t.at(i));
  }
}

TEST(TupleTest, ConcatAndHashOn) {
  Tuple a({Value(int64_t{1}), Value(int64_t{2})});
  Tuple b({Value(int64_t{2}), Value(int64_t{3})});
  Tuple c = Tuple::Concat(a, b);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.at(3).AsInt(), 3);
  // Hash over a's column 1 equals hash over b's column 0 (both value 2).
  EXPECT_EQ(a.HashOn({1}), b.HashOn({0}));
  EXPECT_TRUE(a.EqualsOn(b, {1}, {0}));
  EXPECT_FALSE(a.EqualsOn(b, {0}, {0}));
}

}  // namespace
}  // namespace reoptdb
