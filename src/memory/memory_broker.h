// Cross-query memory broker: revocable grants over one shared budget.
//
// The MemoryManager divides *one query's* budget among its operators
// (Paradise's three-pass division). Under concurrent execution the queries
// themselves compete for memory first; the broker arbitrates that outer
// layer. Each admitted query holds a grant; the portion its operators have
// not pinned yet (Section 2.3: "once an operator starts executing, its
// memory allocation cannot be changed") is revocable. When a new query's
// ask cannot be met from free pages, the broker shaves the *largest*
// revocable grants first — the same heuristic as the MemoryManager's
// pass-1 shave — and notifies each victim so it can re-divide what
// remains and arm the controller's reopt-thrash hysteresis.

#ifndef REOPTDB_MEMORY_MEMORY_BROKER_H_
#define REOPTDB_MEMORY_MEMORY_BROKER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "obs/query_trace.h"

namespace reoptdb {

/// \brief Arbitrates one shared page budget across concurrent queries.
///
/// Single-threaded like everything else in the engine: the WorkloadManager
/// calls Register/Release between session steps, never concurrently.
class MemoryBroker {
 public:
  /// The broker's view of one admitted query (the WorkloadManager adapts
  /// QuerySession to this).
  class GrantHolder {
   public:
    virtual ~GrantHolder() = default;
    /// Pages pinned by already-started operators — the non-revocable floor.
    virtual double PinnedPages() const = 0;
    /// The holder's total grant changed. `cause` is non-null when the
    /// change is a revocation in favor of another query (for the victim's
    /// trace); null for a plain re-grant.
    virtual void OnGrantChanged(double new_grant_pages,
                                const RevocationEvent* cause) = 0;
  };

  /// `faults` may be null; when set, the memory.revoke point fires once per
  /// attempted revocation (an injected error aborts the remaining shave —
  /// pages already freed stay freed, victims already notified stay shrunk).
  MemoryBroker(double total_pages, FaultInjector* faults = nullptr)
      : total_pages_(total_pages), free_pages_(total_pages), faults_(faults) {}

  MemoryBroker(const MemoryBroker&) = delete;
  MemoryBroker& operator=(const MemoryBroker&) = delete;

  /// Admits a query: grants min(ask, free-after-revocation) pages, shaving
  /// other queries' revocable grants largest-first if free pages alone
  /// cannot cover the ask. Fails with kResourceExhausted — before harming
  /// any victim — when even full revocation could not reach `min_pages`,
  /// and with the revocations kept when an injected fault stopped the
  /// shave short of `min_pages`. `at_ms` stamps the RevocationEvents.
  Result<double> Register(uint64_t query_id, GrantHolder* holder,
                          double ask_pages, double min_pages, double at_ms);

  /// Returns the query's entire grant to the free pool. Freed pages are
  /// not proactively redistributed; queued queries pick them up at their
  /// own admission (documented policy: no unsolicited re-grants, so a
  /// query's memory only changes when someone needed it).
  void Release(uint64_t query_id);

  double total_pages() const { return total_pages_; }
  double free_pages() const { return free_pages_; }
  /// Current grant of an admitted query; 0 if unknown.
  double grant(uint64_t query_id) const;
  int active() const { return static_cast<int>(entries_.size()); }

  /// Every revocation performed, in order.
  const std::vector<RevocationEvent>& revocations() const { return log_; }

 private:
  struct Entry {
    GrantHolder* holder = nullptr;
    double grant = 0;
    double min_pages = 0;
  };

  double total_pages_;
  double free_pages_;
  FaultInjector* faults_;
  /// Keyed by query id — iteration (victim scans) is deterministic.
  std::map<uint64_t, Entry> entries_;
  std::vector<RevocationEvent> log_;
};

}  // namespace reoptdb

#endif  // REOPTDB_MEMORY_MEMORY_BROKER_H_
