#include "exec/exchange_op.h"

#include <algorithm>

namespace reoptdb {

void ExchangeChannel::AddEndpoint(int id, ExecContext* ctx,
                                  NetChannelStats* stats,
                                  uint64_t sender_epoch) {
  Endpoint& ep = endpoints_[id];
  ep.ctx = ctx;
  ep.stats = stats;
  ep.sender_epoch = sender_epoch;
}

uint64_t ExchangeChannel::BufferBytes(const std::vector<Tuple>& rows) {
  uint64_t bytes = 0;
  for (const Tuple& t : rows) bytes += t.SerializedSize();
  return bytes;
}

Status ExchangeChannel::CheckWithRetry(const char* point, Endpoint* ep) {
  if (faults_ == nullptr) return Status::OK();
  Status st = faults_->Check(point);
  double backoff_ms = kRetryBackoffBaseMs;
  int attempts = 0;
  // A crash is not a link error: it must propagate so the driver's crash
  // semantics (GC + journal resume on the next Execute) engage.
  while (!st.ok() && st.code() != StatusCode::kCrashed &&
         attempts < kMaxNetRetries) {
    ++attempts;
    if (ep->stats != nullptr) {
      ++ep->stats->retries;
      ep->stats->retry_penalty_ms += backoff_ms;
    }
    if (ep->ctx != nullptr) ep->ctx->ChargeExternalMs(backoff_ms);
    backoff_ms *= 2.0;
    st = faults_->Check(point);
  }
  return st;
}

Status ExchangeChannel::Send(int from, int to, std::vector<Tuple> rows) {
  if (rows.empty()) return Status::OK();
  auto fit = endpoints_.find(from);
  auto tit = endpoints_.find(to);
  if (fit == endpoints_.end() || tit == endpoints_.end())
    return Status::Internal("exchange: unknown endpoint");
  Endpoint& sender = fit->second;
  // Membership-epoch fence: a buffer stamped with a stale epoch is dropped
  // here, before any fault/retry/cost machinery — a fenced zombie gets no
  // say in the stage and pays no modeled cost (its "send" went nowhere).
  // The send still reports OK: fencing is the receiver-side defense; the
  // stale sender is not owed an error it could act on.
  if (current_epoch_ != 0) {
    const uint64_t stamp =
        sender.sender_epoch == 0 ? current_epoch_ : sender.sender_epoch;
    if (stamp != current_epoch_) {
      if (sender.stats != nullptr) ++sender.stats->fenced_buffers;
      fences_.push_back(
          Fence{from, to, static_cast<uint64_t>(rows.size()), stamp});
      return Status::OK();
    }
  }
  RETURN_IF_ERROR(CheckWithRetry(faults::kNetSend, &sender));
  const uint64_t bytes = BufferBytes(rows);
  const uint64_t msgs = Messages(rows.size());
  if (sender.stats != nullptr) {
    sender.stats->msgs_sent += msgs;
    sender.stats->bytes_sent += bytes;
  }
  if (sender.ctx != nullptr)
    sender.ctx->ChargeExternalMs(cost_->NetTransfer(
        static_cast<double>(bytes), static_cast<double>(msgs)));
  tit->second.inbox[from].push_back(std::move(rows));
  return Status::OK();
}

Status ExchangeChannel::Receive(int to, std::vector<Tuple>* out) {
  auto tit = endpoints_.find(to);
  if (tit == endpoints_.end())
    return Status::Internal("exchange: unknown endpoint");
  Endpoint& recv = tit->second;
  for (auto& [from, fifo] : recv.inbox) {
    (void)from;
    for (std::vector<Tuple>& buf : fifo) {
      if (buf.empty()) continue;
      RETURN_IF_ERROR(CheckWithRetry(faults::kNetRecv, &recv));
      const uint64_t bytes = BufferBytes(buf);
      const uint64_t msgs = Messages(buf.size());
      if (recv.stats != nullptr) {
        recv.stats->msgs_recv += msgs;
        recv.stats->bytes_recv += bytes;
      }
      if (recv.ctx != nullptr)
        recv.ctx->ChargeExternalMs(cost_->NetTransfer(
            static_cast<double>(bytes), static_cast<double>(msgs)));
      out->insert(out->end(), std::make_move_iterator(buf.begin()),
                  std::make_move_iterator(buf.end()));
      buf.clear();
    }
    fifo.clear();
  }
  recv.inbox.clear();
  return Status::OK();
}

uint64_t ExchangeChannel::PendingRows(int to) const {
  auto tit = endpoints_.find(to);
  if (tit == endpoints_.end()) return 0;
  uint64_t n = 0;
  for (const auto& [from, fifo] : tit->second.inbox) {
    (void)from;
    for (const auto& buf : fifo) n += buf.size();
  }
  return n;
}

Status ExchangeSourceOp::OpenImpl() {
  rows_ = ctx_->FindExchangeSource(node_->table);
  if (rows_ == nullptr)
    return Status::Internal("exchange source not bound: " + node_->table);
  pos_ = 0;
  return Status::OK();
}

Result<bool> ExchangeSourceOp::NextImpl(Tuple* out) {
  if (pos_ >= rows_->size()) return false;
  *out = (*rows_)[pos_++];
  ctx_->ChargeTuples(1);
  return true;
}

Result<bool> ExchangeSourceOp::NextBatchImpl(TupleBatch* out) {
  uint64_t produced = 0;
  while (!out->full() && pos_ < rows_->size()) {
    *out->AddSlot() = (*rows_)[pos_++];
    ++produced;
  }
  if (produced > 0) ctx_->ChargeTuples(produced);
  return !out->empty();
}

Status ExchangeSourceOp::CloseImpl() {
  rows_ = nullptr;
  pos_ = 0;
  return Status::OK();
}

}  // namespace reoptdb
