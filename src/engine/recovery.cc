#include "engine/recovery.h"

#include <set>
#include <unordered_set>

#include "obs/query_trace.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "reopt/query_journal.h"

namespace reoptdb {

namespace {

/// Frees a page directly (pool frame dropped, disk storage released),
/// tolerating already-freed ids — used to garbage-collect pages referenced
/// by rejected journal records that no catalog entry owns anymore.
void FreeOrphanPage(BufferPool* pool, PageId id) {
  pool->Discard(id);
  (void)pool->disk()->FreePage(id);
}

}  // namespace

Result<QueryResult> RecoveryManager::Recover(const std::string& sql,
                                             const ReoptOptions& reopt) {
  FaultInjector* faults = db_->faults();
  faults->ClearCrash();  // the restart: the "new process" has no crash latch

  // Storage-level redo comes first: restore checkpointed base tables and
  // replay committed WAL transactions so the resumed query reads
  // crash-consistent base data (committed DML present, uncommitted DML
  // gone). A no-op when no transactional DML ever ran.
  RETURN_IF_ERROR(db_->txn_manager()->Recover());

  Catalog* catalog = db_->catalog();
  QueryJournal* journal = db_->journal();

  // Canonical root key: bind-then-render, exactly how the original
  // execution computed the root_sql it journaled under.
  ASSIGN_OR_RETURN(SelectStmtAst ast, ParseSelect(sql));
  ASSIGN_OR_RETURN(QuerySpec spec, Bind(ast, *catalog));
  const std::string root_sql = spec.ToSql();

  auto attach_event = [](QueryResult* r, RecoveryEvent ev) {
    r->report.events.push_back(Render(ev));
    r->report.trace.recoveries.push_back(std::move(ev));
  };

  // Falls back to a clean from-scratch re-run: garbage-collect every piece
  // of durable state belonging to this root (catalog temps, journaled
  // pages, journal records), then execute the original query normally.
  // `records` may be null when the journal itself could not be loaded; in
  // that case nothing is trusted and everything temp is collected.
  auto fallback = [&](const std::string& reason,
                      const std::vector<JournalStage>* records)
      -> Result<QueryResult> {
    std::unordered_set<std::string> protected_names;
    if (records != nullptr) {
      for (const JournalStage& s : *records) {
        if (s.root_sql == root_sql) continue;
        for (const TempSnapshot& t : s.temps) protected_names.insert(t.name);
      }
    }
    for (const std::string& name : catalog->TempTableNames()) {
      if (protected_names.count(name)) continue;
      (void)catalog->Drop(name);
    }
    if (records != nullptr) {
      // Pages journaled under this root whose catalog entry is gone (e.g.
      // a crash mid-cleanup erased the binding): free them directly.
      for (const JournalStage& s : *records) {
        if (s.root_sql != root_sql) continue;
        for (const TempSnapshot& t : s.temps) {
          if (catalog->Exists(t.name)) continue;
          for (PageId id : t.page_ids)
            FreeOrphanPage(db_->buffer_pool(), id);
        }
      }
      journal->MarkComplete(root_sql);
    } else {
      journal->Clear();  // unreadable journal: nothing in it is trusted
    }
    Result<QueryResult> res = db_->ExecuteWith(sql, reopt);
    if (!res.ok()) return res;
    res->report.events.push_back(Render(RecoveryFallback{reason}));
    res->report.trace.recovery_fallbacks.push_back(RecoveryFallback{reason});
    RecoveryEvent ev;
    ev.resumed = false;
    attach_event(&res.value(), std::move(ev));
    return res;
  };

  // Load the journal BEFORE touching any catalog binding: a crash injected
  // at recovery.load must leave the surviving temp entries intact so the
  // next Recover attempt still finds their pages through them.
  Result<std::vector<JournalStage>> loaded = journal->Load(faults);
  if (!loaded.ok()) {
    if (loaded.status().code() == StatusCode::kCrashed)
      return loaded.status();
    return fallback("journal load failed: " + loaded.status().ToString(),
                    nullptr);
  }
  const std::vector<JournalStage>& records = loaded.value();

  // Latest journaled stage for this root; records are self-contained, so
  // one record is all recovery needs.
  const JournalStage* best = nullptr;
  for (const JournalStage& s : records) {
    if (s.root_sql != root_sql) continue;
    if (best == nullptr || s.stage > best->stage) best = &s;
  }

  if (best == nullptr) {
    // Nothing committed before the crash: collect any temps the crashed
    // run left behind (e.g. it died mid-materialization) and run the
    // query from scratch. This is not a fallback — there was never a
    // resume point to lose.
    std::unordered_set<std::string> protected_names;
    for (const JournalStage& s : records)
      for (const TempSnapshot& t : s.temps) protected_names.insert(t.name);
    for (const std::string& name : catalog->TempTableNames()) {
      if (protected_names.count(name)) continue;
      (void)catalog->Drop(name);
    }
    Result<QueryResult> res = db_->ExecuteWith(sql, reopt);
    if (!res.ok()) return res;
    RecoveryEvent ev;
    ev.resumed = false;
    attach_event(&res.value(), std::move(ev));
    return res;
  }

  // Rebind and validate every temp table the journaled remainder reads.
  // The restart loses in-memory bindings, so even a surviving catalog
  // entry is detached first and rebuilt purely from the journal record —
  // recovery must work from (pages + journal) alone.
  uint64_t validated_rows = 0;
  std::string temp_names;
  for (const TempSnapshot& snap : best->temps) {
    if (catalog->Exists(snap.name)) {
      Result<std::vector<PageId>> det = catalog->Detach(snap.name);
      if (!det.ok())
        return fallback("detach of " + snap.name + " failed: " +
                            det.status().ToString(),
                        &records);
    }
    Result<TableInfo*> ti =
        catalog->CreateTable(snap.name, snap.schema, /*is_temp=*/true);
    if (!ti.ok())
      return fallback("rebind of " + snap.name + " failed: " +
                          ti.status().ToString(),
                      &records);
    if (Status st = ti.value()->heap->AdoptPages(
            snap.page_ids, snap.tuple_count, snap.total_tuple_bytes,
            snap.content_checksum);
        !st.ok())
      return fallback("page adoption for " + snap.name + " failed: " +
                          st.ToString(),
                      &records);

    // Validation pass (charged like any recovery-time scan): the stored
    // bytes must hash to the journaled content checksum and deserialize to
    // exactly the journaled row count. Anything else means the pages are
    // corrupt, truncated, or not the pages the journal meant.
    Result<uint64_t> cks = ti.value()->heap->ComputeContentChecksum();
    if (!cks.ok())
      return fallback("checksum scan of " + snap.name + " failed: " +
                          cks.status().ToString(),
                      &records);
    if (cks.value() != snap.content_checksum)
      return fallback("content checksum mismatch on " + snap.name, &records);
    uint64_t rows = 0;
    HeapFile::Iterator it = ti.value()->heap->Scan();
    Tuple t;
    while (true) {
      Result<bool> more = it.Next(&t);
      if (!more.ok())
        return fallback("validation scan of " + snap.name + " failed: " +
                            more.status().ToString(),
                        &records);
      if (!more.value()) break;
      ++rows;
    }
    if (rows != snap.tuple_count)
      return fallback("row count mismatch on " + snap.name + " (journal " +
                          std::to_string(snap.tuple_count) + ", disk " +
                          std::to_string(rows) + ")",
                      &records);
    if (Status st = catalog->SetStats(snap.name, snap.stats); !st.ok())
      return fallback("stats rebind for " + snap.name + " failed: " +
                          st.ToString(),
                      &records);
    validated_rows += rows;
    if (!temp_names.empty()) temp_names += ",";
    temp_names += snap.name;
  }

  // Garbage-collect temps the crashed run left behind that the resume
  // point does not read (e.g. a later uncommitted switch's temp).
  {
    std::unordered_set<std::string> keep;
    for (const TempSnapshot& t : best->temps) keep.insert(t.name);
    for (const JournalStage& s : records) {
      if (s.root_sql == root_sql) continue;
      for (const TempSnapshot& t : s.temps) keep.insert(t.name);
    }
    for (const std::string& name : catalog->TempTableNames()) {
      if (keep.count(name)) continue;
      (void)catalog->Drop(name);
    }
  }

  // Resume: execute the journaled remainder under the original root so a
  // further plan switch (or re-crash) chains onto the same journal
  // records. On a crash, everything stays for the next Recover; on any
  // other failure the rebound temps are collected here (the execution's
  // journal guard has already cleared the records).
  Result<QueryResult> res =
      db_->ExecuteWithRoot(best->remainder_sql, reopt, root_sql);
  if (!res.ok()) {
    if (res.status().code() == StatusCode::kCrashed) return res.status();
    for (const TempSnapshot& snap : best->temps)
      (void)catalog->Drop(snap.name);
    return res.status();
  }
  for (const TempSnapshot& snap : best->temps)
    if (catalog->Exists(snap.name)) (void)catalog->Drop(snap.name);

  RecoveryEvent ev;
  ev.stage = best->stage;
  ev.temp_table = temp_names;
  ev.rows = validated_rows;
  ev.skipped_work_ms = best->work_done_ms;
  ev.fingerprint_match =
      FingerprintPlanText(res->report.plan_before) == best->plan_fingerprint;
  ev.resumed = true;
  attach_event(&res.value(), std::move(ev));
  return res;
}

}  // namespace reoptdb
