// Column and Schema: the shape of tuples flowing between operators.

#ifndef REOPTDB_TYPES_SCHEMA_H_
#define REOPTDB_TYPES_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace reoptdb {

/// \brief One column of a schema.
///
/// `qualifier` is the table alias the column came from ("" for computed
/// columns such as aggregates). `avg_width` is the average payload size in
/// bytes, used by memory-demand and cost estimation.
struct Column {
  std::string qualifier;
  std::string name;
  ValueType type = ValueType::kInt64;
  double avg_width = 8.0;

  /// "qualifier.name" or just "name" when unqualified.
  std::string QualifiedName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

/// \brief An ordered list of columns with name-based lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  size_t NumColumns() const { return cols_.size(); }
  const Column& column(size_t i) const { return cols_[i]; }
  const std::vector<Column>& columns() const { return cols_; }

  void AddColumn(Column col) { cols_.push_back(std::move(col)); }

  /// Resolves `name`, which may be "qual.col" or a bare "col".
  /// A bare name must be unambiguous across qualifiers.
  Result<size_t> IndexOf(const std::string& name) const;

  /// Returns true if the named column resolves.
  bool Contains(const std::string& name) const {
    return IndexOf(name).ok();
  }

  /// Average serialized tuple width in bytes (sum of column widths plus
  /// per-value tags).
  double AvgTupleBytes() const;

  /// Concatenation (join output): left columns then right columns.
  static Schema Concat(const Schema& left, const Schema& right);

  std::string ToString() const;

 private:
  std::vector<Column> cols_;
};

}  // namespace reoptdb

#endif  // REOPTDB_TYPES_SCHEMA_H_
