// Tests for the memory manager: demand computation, the allocation policy
// from the paper's Fig. 3 narrative, and frozen (started) operators.

#include "gtest/gtest.h"
#include "memory/memory_manager.h"
#include "optimizer/cost_model.h"
#include "plan/physical_plan.h"

namespace reoptdb {
namespace {

/// Builds: Aggregate <- HJ2 <- HJ1 <- (scan, scan), HJ2 probe = scan.
/// Mirrors the paper's Fig. 3 plan shape.
std::unique_ptr<PlanNode> Fig3Plan(double filter_pages) {
  auto scan1 = std::make_unique<PlanNode>();
  scan1->kind = OpKind::kSeqScan;
  scan1->est.cardinality = 15000;
  scan1->est.pages = filter_pages;
  scan1->improved = scan1->est;

  auto scan2 = std::make_unique<PlanNode>();
  scan2->kind = OpKind::kSeqScan;
  scan2->est.cardinality = 40000;
  scan2->est.pages = 1000;
  scan2->improved = scan2->est;

  auto hj1 = std::make_unique<PlanNode>();
  hj1->kind = OpKind::kHashJoin;
  hj1->est.cardinality = 15000;
  hj1->est.pages = filter_pages + 10;
  hj1->children.push_back(std::move(scan1));  // build = filtered Rel1
  hj1->children.push_back(std::move(scan2));
  hj1->improved = hj1->est;

  auto scan3 = std::make_unique<PlanNode>();
  scan3->kind = OpKind::kSeqScan;
  scan3->est.cardinality = 5000;
  scan3->est.pages = 200;
  scan3->improved = scan3->est;

  auto hj2 = std::make_unique<PlanNode>();
  hj2->kind = OpKind::kHashJoin;
  hj2->est.cardinality = 15000;
  hj2->est.pages = filter_pages + 20;
  hj2->children.push_back(std::move(hj1));  // build = HJ1 output
  hj2->children.push_back(std::move(scan3));
  hj2->improved = hj2->est;

  auto agg = std::make_unique<PlanNode>();
  agg->kind = OpKind::kHashAggregate;
  agg->group_cols = {"r.g"};
  agg->est.cardinality = 100;
  agg->est.num_groups = 100;
  agg->improved = agg->est;
  agg->output_schema =
      Schema(std::vector<Column>{{"", "g", ValueType::kInt64, 8}});
  agg->children.push_back(std::move(hj2));
  int id = 0;
  agg->PostOrder([&](PlanNode* n) { n->id = id++; });
  return agg;
}

TEST(MemoryManagerTest, BlockingOrderIsBuildFirst) {
  auto plan = Fig3Plan(400);
  std::vector<PlanNode*> order;
  CollectBlockingOrder(plan.get(), &order);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0]->kind, OpKind::kHashJoin);  // HJ1 (deepest build)
  EXPECT_EQ(order[1]->kind, OpKind::kHashJoin);  // HJ2
  EXPECT_EQ(order[2]->kind, OpKind::kHashAggregate);
}

TEST(MemoryManagerTest, DemandsFromImprovedEstimates) {
  CostModel cost;
  MemoryManager mm(&cost, 1000);
  auto plan = Fig3Plan(400);
  std::vector<PlanNode*> order;
  CollectBlockingOrder(plan.get(), &order);
  mm.ComputeDemands(order[0]);
  EXPECT_DOUBLE_EQ(order[0]->max_mem_pages, cost.HashJoinMaxMem(400));
  EXPECT_DOUBLE_EQ(order[0]->min_mem_pages, cost.HashJoinMinMem(400));
  EXPECT_GT(order[0]->max_mem_pages, order[0]->min_mem_pages);
}

TEST(MemoryManagerTest, AmpleMemoryGrantsMaxima) {
  CostModel cost;
  MemoryManager mm(&cost, 100000);
  auto plan = Fig3Plan(400);
  EXPECT_TRUE(mm.TryAllocate(nullptr, plan.get(), {}).value());
  std::vector<PlanNode*> order;
  CollectBlockingOrder(plan.get(), &order);
  for (PlanNode* n : order)
    EXPECT_GE(n->mem_budget_pages, n->max_mem_pages) << OpKindName(n->kind);
}

TEST(MemoryManagerTest, ScarceMemoryFirstOperatorWins) {
  // The paper's Fig. 3: under pressure the first join gets its maximum,
  // the second gets its minimum.
  CostModel cost;
  auto plan = Fig3Plan(400);
  std::vector<PlanNode*> order;
  CollectBlockingOrder(plan.get(), &order);
  double total = cost.HashJoinMaxMem(400) + cost.HashJoinMinMem(410) + 8;
  MemoryManager mm(&cost, total);
  EXPECT_TRUE(mm.TryAllocate(nullptr, plan.get(), {}).value());
  EXPECT_GE(order[0]->mem_budget_pages, order[0]->max_mem_pages);
  EXPECT_LT(order[1]->mem_budget_pages, order[1]->max_mem_pages);
  EXPECT_GE(order[1]->mem_budget_pages, order[1]->min_mem_pages);
}

TEST(MemoryManagerTest, FrozenOperatorsKeepBudget) {
  CostModel cost;
  MemoryManager mm(&cost, 2000);
  auto plan = Fig3Plan(400);
  ASSERT_TRUE(mm.TryAllocate(nullptr, plan.get(), {}).value());
  std::vector<PlanNode*> order;
  CollectBlockingOrder(plan.get(), &order);
  double hj1_before = order[0]->mem_budget_pages;

  // HJ1 started; Rel1 turned out smaller -> improved estimates shrink.
  order[0]->children[0]->improved.pages = 100;
  std::set<int> frozen = {order[0]->id};
  (void)mm.TryAllocate(nullptr, plan.get(), frozen);
  EXPECT_DOUBLE_EQ(order[0]->mem_budget_pages, hj1_before);
}

TEST(MemoryManagerTest, ImprovedEstimatesUnlockOnePass) {
  // The Fig. 3 story: with the 15000-row estimate HJ2's max demand cannot
  // be met; with the observed 7500 rows it can.
  CostModel cost;
  auto plan = Fig3Plan(400);
  std::vector<PlanNode*> order;
  CollectBlockingOrder(plan.get(), &order);

  double budget = cost.HashJoinMaxMem(400) + cost.HashJoinMaxMem(210) + 4;
  MemoryManager mm(&cost, budget);
  ASSERT_TRUE(mm.TryAllocate(nullptr, plan.get(), {}).value());
  EXPECT_LT(order[1]->mem_budget_pages, cost.HashJoinMaxMem(410));

  // Observed: HJ1 output only half as large.
  order[1]->children[0]->improved.pages = 205;
  std::set<int> frozen = {order[0]->id};
  ASSERT_TRUE(mm.TryAllocate(nullptr, plan.get(), frozen).value());
  EXPECT_GE(order[1]->mem_budget_pages, cost.HashJoinMaxMem(205));
}

TEST(MemoryManagerTest, MinimaScaledWhenBudgetTiny) {
  CostModel cost;
  MemoryManager mm(&cost, 6);
  auto plan = Fig3Plan(4000);
  (void)mm.TryAllocate(nullptr, plan.get(), {});
  std::vector<PlanNode*> order;
  CollectBlockingOrder(plan.get(), &order);
  double total = 0;
  for (PlanNode* n : order) {
    EXPECT_GE(n->mem_budget_pages, 2);
    total += n->mem_budget_pages;
  }
  // 3 consumers at the 2-page floor fit a 6-page budget exactly; the
  // manager must not over-commit.
  EXPECT_LE(total, 6);
}

TEST(MemoryManagerTest, TinyBudgetNeverOverCommits) {
  // Sweep budgets through the scaled-minima regime: after the 2-page
  // floor, the aggregate grant must still respect the budget whenever the
  // floor itself fits (3 consumers -> 6 pages).
  CostModel cost;
  for (double budget : {6.0, 7.0, 9.0, 13.0, 21.0, 34.0, 55.0, 89.0}) {
    auto plan = Fig3Plan(4000);
    MemoryManager mm(&cost, budget);
    (void)mm.TryAllocate(nullptr, plan.get(), {});
    std::vector<PlanNode*> order;
    CollectBlockingOrder(plan.get(), &order);
    double total = 0;
    for (PlanNode* n : order) {
      EXPECT_GE(n->mem_budget_pages, 2) << "budget=" << budget;
      total += n->mem_budget_pages;
    }
    EXPECT_LE(total, budget) << "budget=" << budget;
  }
}

TEST(MemoryManagerTest, LeftoverRespectsOperatorMaxima) {
  // Leftover distribution is capped at each operator's maximum; pages the
  // last operator cannot use spill to earlier consumers below their max.
  CostModel cost;
  auto plan = Fig3Plan(400);
  std::vector<PlanNode*> order;
  CollectBlockingOrder(plan.get(), &order);
  // Enough for HJ1's max + HJ2's min + a bit extra that only HJ2 (not the
  // tiny aggregate) has room to absorb.
  double budget = cost.HashJoinMaxMem(400) + cost.HashJoinMinMem(410) + 40;
  MemoryManager mm(&cost, budget);
  ASSERT_TRUE(mm.TryAllocate(nullptr, plan.get(), {}).value());
  double total = 0;
  for (PlanNode* n : order) {
    EXPECT_LE(n->mem_budget_pages, n->max_mem_pages) << OpKindName(n->kind);
    total += n->mem_budget_pages;
  }
  EXPECT_LE(total, budget);
  // The spill reached HJ2 (it sits above its minimum but below its max).
  EXPECT_GT(order[1]->mem_budget_pages, order[1]->min_mem_pages);
}

TEST(MemoryManagerTest, AmpleMemoryDoesNotExceedMaxima) {
  // With memory to spare, every operator lands exactly on its maximum —
  // the old policy dumped the entire leftover on the last operator.
  CostModel cost;
  MemoryManager mm(&cost, 100000);
  auto plan = Fig3Plan(400);
  EXPECT_TRUE(mm.TryAllocate(nullptr, plan.get(), {}).value());
  std::vector<PlanNode*> order;
  CollectBlockingOrder(plan.get(), &order);
  for (PlanNode* n : order)
    EXPECT_DOUBLE_EQ(n->mem_budget_pages, n->max_mem_pages)
        << OpKindName(n->kind);
}

}  // namespace
}  // namespace reoptdb
