# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/binder_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/reopt_test[1]_include.cmake")
include("/root/repo/build/tests/tpcd_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/statement_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/reopt_extension_test[1]_include.cmake")
include("/root/repo/build/tests/parametric_test[1]_include.cmake")
include("/root/repo/build/tests/merge_join_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
