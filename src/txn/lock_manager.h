// Strict two-phase locking for transactional DML.
//
// Writers follow strict 2PL over a two-level hierarchy: an intention lock
// on the table (IX for writes, IS reserved for locking readers), then X
// locks on the individual rows a statement touches. Readers do NOT appear
// here: SELECTs run against an epoch-bounded snapshot (see
// ExecContext::ScanSnapshot), so the isolation split is serializable
// writers / snapshot readers — the same degree most MVCC engines ship.
//
// The engine is single-threaded and cooperatively stepped, so a conflicting
// request can never block inside a call: Acquire() returns kWait, the
// caller charges a simulated wait quantum against its timeout and re-issues
// the statement later (granted locks are kept — that is the 2PL growing
// phase). Deadlocks therefore cannot resolve by preemption timing; a
// wait-for-graph cycle check runs at every conflicting acquire and aborts
// the youngest transaction in the cycle.

#ifndef REOPTDB_TXN_LOCK_MANAGER_H_
#define REOPTDB_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/status.h"

namespace reoptdb {

/// Lock modes. IS/IX are table-level intents declaring row-level S/X locks
/// below; S/X at table level cover the whole table.
enum class LockMode : uint8_t { kIS = 0, kIX = 1, kS = 2, kX = 3 };

const char* LockModeName(LockMode m);

/// Standard compatibility matrix (Gray et al.):
///          IS    IX    S     X
///   IS     yes   yes   yes   no
///   IX     yes   yes   no    no
///   S      yes   no    yes   no
///   X      no    no    no    no
bool LockCompatible(LockMode a, LockMode b);

/// Outcome of a conflicting-capable acquire.
enum class LockOutcome : uint8_t {
  kGranted,         ///< lock held (fresh grant or already-held upgrade)
  kWait,            ///< conflict; requester registered as waiting
  kDeadlockVictim,  ///< requester is the youngest in a wait-for cycle and
                    ///< must abort itself
};

/// \brief Table/row lock table with wait-for-graph deadlock detection.
///
/// Resources are opaque strings ("table:part", "row:part:<ridkey>") built
/// by TableResource/RowResource; the manager itself is hierarchy-agnostic —
/// callers acquire the table intent before row locks.
class LockManager {
 public:
  /// Called to abort a deadlock victim other than the requester. Must
  /// discard the victim's write set and call ReleaseAll(victim).
  using AbortVictim = std::function<Status(uint64_t txn_id,
                                           const std::string& resource)>;

  explicit LockManager(FaultInjector* faults = nullptr) : faults_(faults) {}

  void set_abort_victim(AbortVictim cb) { abort_victim_ = std::move(cb); }

  static std::string TableResource(const std::string& table) {
    return "table:" + table;
  }
  static std::string RowResource(const std::string& table, uint64_t rid_key) {
    return "row:" + table + ":" + std::to_string(rid_key);
  }

  /// Requests `mode` on `resource` for `txn_id`. Re-entrant: holding an
  /// equal or stronger mode returns kGranted immediately; a weaker held
  /// mode is upgraded when compatible with the other holders.
  ///
  /// On conflict the requester is recorded as waiting and the wait-for
  /// graph is checked: a cycle aborts its youngest member — the requester
  /// itself (kDeadlockVictim; caller must abort) or another transaction
  /// (aborted via the AbortVictim callback, then the grant is retried).
  /// Non-cycle conflicts return kWait; the caller retries later.
  ///
  /// Checks the lock.acquire fault point on every call.
  Result<LockOutcome> Acquire(uint64_t txn_id, const std::string& resource,
                              LockMode mode);

  /// Releases everything `txn_id` holds and forgets any wait it had
  /// registered (commit, abort, or crash-restart cleanup).
  void ReleaseAll(uint64_t txn_id);

  /// Drops all state (recovery restart: lock tables are volatile).
  void Reset();

  /// Strongest mode `txn_id` holds on `resource`, or none.
  bool Holds(uint64_t txn_id, const std::string& resource,
             LockMode* mode = nullptr) const;

  /// Resources held by `txn_id` as "resource(MODE)" strings, sorted.
  std::vector<std::string> HeldBy(uint64_t txn_id) const;

  size_t held_resource_count() const { return table_.size(); }
  uint64_t deadlocks_detected() const { return deadlocks_; }
  uint64_t waits_registered() const { return waits_; }

  /// Details of the last conflict Acquire() saw (for LockWait records):
  /// one conflicting holder (lowest txn id).
  uint64_t last_conflict_holder() const { return last_conflict_holder_; }
  /// Victim and cycle length of the last deadlock resolution.
  uint64_t last_victim() const { return last_victim_; }
  int last_cycle_length() const { return last_cycle_length_; }

  /// Human-readable lock table (the shell's \txn view).
  std::string Describe() const;

 private:
  struct WaitEntry {
    std::string resource;
    LockMode mode;
  };

  /// True when `txn_id` may take `mode` given the other current holders.
  bool GrantableFor(uint64_t txn_id, const std::string& resource,
                    LockMode mode) const;

  /// Finds a wait-for cycle through `from` assuming it waits on
  /// `resource`/`mode`; fills `cycle` with the member txn ids.
  bool FindCycle(uint64_t from, const std::string& resource, LockMode mode,
                 std::vector<uint64_t>* cycle) const;

  // resource -> (txn -> strongest held mode). std::map for deterministic
  // iteration (Describe, victim tie-breaks).
  std::map<std::string, std::map<uint64_t, LockMode>> table_;
  // txn -> the single resource it is currently waiting on (a transaction
  // executes one statement at a time, so at most one wait each).
  std::map<uint64_t, WaitEntry> waiting_;
  AbortVictim abort_victim_;
  FaultInjector* faults_;
  uint64_t deadlocks_ = 0;
  uint64_t waits_ = 0;
  uint64_t last_conflict_holder_ = 0;
  uint64_t last_victim_ = 0;
  int last_cycle_length_ = 0;
};

}  // namespace reoptdb

#endif  // REOPTDB_TXN_LOCK_MANAGER_H_
