#include "stats/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace reoptdb {

ZipfDistribution::ZipfDistribution(uint64_t n, double z, bool scramble,
                                   uint64_t scramble_seed)
    : n_(n), z_(z), scramble_(scramble), scramble_seed_(scramble_seed) {
  assert(n > 0);
  if (z <= 0) return;  // uniform fast path
  cdf_.resize(n);
  double acc = 0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), z);
    cdf_[i] = acc;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= acc;
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  uint64_t rank;
  if (cdf_.empty()) {
    rank = rng->NextBelow(n_);
  } else {
    double u = rng->NextDouble();
    rank = static_cast<uint64_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    if (rank >= n_) rank = n_ - 1;
  }
  if (!scramble_) return rank;
  // Map rank through a fixed pseudo-random function; collisions are fine
  // (the goal is only to decouple frequency rank from domain position).
  return SplitMix64(rank ^ scramble_seed_) % n_;
}

}  // namespace reoptdb
