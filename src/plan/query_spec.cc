#include "plan/query_spec.h"

#include <sstream>

namespace reoptdb {

std::string QuerySpec::ToSql() const {
  std::ostringstream os;
  os << "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) os << ", ";
    const OutputItem& it = items[i];
    if (it.agg != AggFunc::kNone) {
      os << AggFuncName(it.agg) << "(";
      os << (it.count_star ? "*" : Qualified(it.col));
      os << ")";
      os << " AS " << it.name;
    } else {
      os << Qualified(it.col);
      // Preserve the output name when it differs from the bare column —
      // remainder specs rename covered columns ("e__salary") but ORDER BY
      // renders by output name ("salary").
      if (!it.name.empty() && it.name != it.col.column)
        os << " AS " << it.name;
    }
  }
  os << " FROM ";
  for (size_t i = 0; i < relations.size(); ++i) {
    if (i) os << ", ";
    os << relations[i].table;
    if (relations[i].alias != relations[i].table) os << " " << relations[i].alias;
  }
  bool first = true;
  auto conj = [&]() -> std::ostream& {
    os << (first ? " WHERE " : " AND ");
    first = false;
    return os;
  };
  for (const FilterPred& f : filters) {
    conj() << relations[f.rel].alias << "." << f.column << " "
           << CmpOpName(f.op) << " "
           << (f.rhs_is_column
                   ? relations[f.rel].alias + "." + f.rhs_column
                   : f.literal.ToString());
  }
  for (const JoinPred& j : joins) {
    conj() << relations[j.left_rel].alias << "." << j.left_col << " = "
           << relations[j.right_rel].alias << "." << j.right_col;
  }
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i) os << ", ";
      os << Qualified(group_by[i]);
    }
  }
  if (!order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i) os << ", ";
      os << items[order_by[i].first].name << (order_by[i].second ? "" : " DESC");
    }
  }
  if (limit >= 0) os << " LIMIT " << limit;
  return os.str();
}

}  // namespace reoptdb
