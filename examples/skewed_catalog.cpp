// Stale/skewed catalog walkthrough: shows how estimate quality degrades as
// the catalog ages and data skews, and how the statistics collectors see
// through it — the error sources from the paper's footnote 2 made visible.
//
//   ./build/examples/skewed_catalog

#include <cstdio>

#include "engine/database.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

using namespace reoptdb;

namespace {

void Report(const char* label, Database* db, const std::string& sql) {
  ReoptOptions probe;            // collectors on, decisions off:
  probe.mode = ReoptMode::kPlanOnly;
  probe.theta2 = 1e12;           // observe only
  Result<QueryResult> r = db->ExecuteWith(sql, probe);
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", label, r.status().ToString().c_str());
    return;
  }
  std::printf("\n%s\n", label);
  std::printf("  %-10s %14s %14s %9s\n", "edge", "estimated", "observed",
              "ratio");
  for (const EdgeComparison& e : r->report.edges) {
    double ratio = e.observed_rows / std::max(1.0, e.estimated_rows);
    std::printf("  node %-5d %14.0f %14.0f %8.2fx\n", e.node_id,
                e.estimated_rows, e.observed_rows, ratio);
  }
}

std::unique_ptr<Database> Make(double z, double update_fraction) {
  DatabaseOptions opts;
  opts.buffer_pool_pages = 64;
  opts.query_mem_pages = 96;
  auto db = std::make_unique<Database>(opts);
  tpcd::TpcdOptions gen;
  gen.scale_factor = 0.005;
  gen.zipf_z = z;
  gen.update_fraction = update_fraction;
  Status st = tpcd::Load(db.get(), gen);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return db;
}

}  // namespace

int main() {
  const std::string sql = tpcd::Q3Sql();
  std::printf("Query under observation: TPC-D Q3\n%s\n", sql.c_str());

  auto fresh = Make(/*z=*/0.0, /*update_fraction=*/0.0);
  Report("fresh catalog, uniform data (estimates should track reality):",
         fresh.get(), sql);

  auto stale = Make(/*z=*/0.0, /*update_fraction=*/1.0);
  Report("stale catalog (updates since ANALYZE): estimates fall behind:",
         stale.get(), sql);

  auto skewed = Make(/*z=*/0.6, /*update_fraction=*/1.0);
  Report("stale catalog + Zipf z=0.6 skew:", skewed.get(), sql);

  std::printf(
      "\nThese observed/estimated gaps are exactly what the Dynamic "
      "Re-Optimization gate (Eq. 2) keys on: run the same queries with "
      "ReoptMode::kFull to see the engine act on them.\n");
  return 0;
}
