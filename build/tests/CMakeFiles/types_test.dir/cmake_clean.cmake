file(REMOVE_RECURSE
  "CMakeFiles/types_test.dir/types_test.cc.o"
  "CMakeFiles/types_test.dir/types_test.cc.o.d"
  "types_test"
  "types_test.pdb"
  "types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
