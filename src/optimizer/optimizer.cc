#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "storage/page.h"

namespace reoptdb {

namespace {

/// One DP table entry: the cheapest plan found for a relation subset.
struct DpEntry {
  std::unique_ptr<PlanNode> plan;
  DerivedRel stats;
  double cost = 0;
};

/// Mutable planning state for one Plan() call.
struct Planner {
  const Catalog* catalog;
  const CostModel* cost;
  const OptimizerOptions* opts;
  const QuerySpec* spec;
  Estimator est;
  uint64_t enumerated = 0;
  std::map<uint32_t, DpEntry> dp;

  std::vector<FeedbackApplied> feedback_applied;

  Planner(const Catalog* c, const CostModel* cm, const OptimizerOptions* o,
          const QuerySpec* s, const BaseRelOverrides* overrides,
          const CardinalityFeedbackStore* feedback)
      : catalog(c),
        cost(cm),
        opts(o),
        spec(s),
        est(c, s, overrides, o->histogram_join_estimation, feedback,
            &feedback_applied) {}

  double MissProb(double table_pages) const {
    return std::clamp(table_pages / std::max(1.0, opts->pool_pages_hint), 0.02,
                      1.0);
  }

  /// Considers `cand` for subset `mask`, keeping it if cheapest.
  void Offer(uint32_t mask, std::unique_ptr<PlanNode> plan, DerivedRel stats,
             double total_cost) {
    ++enumerated;
    auto it = dp.find(mask);
    if (it != dp.end() && it->second.cost <= total_cost) return;
    DpEntry e;
    e.plan = std::move(plan);
    e.stats = std::move(stats);
    e.cost = total_cost;
    dp[mask] = std::move(e);
  }

  Status PlanBaseRel(int r);
  Status PlanJoins();
  Status TryJoin(uint32_t left_mask, int r);
  Result<std::unique_ptr<PlanNode>> Finish();
};

Schema ScanSchema(const TableInfo& info, const std::string& alias) {
  std::vector<Column> cols;
  for (Column c : info.schema.columns()) {
    c.qualifier = alias;
    cols.push_back(std::move(c));
  }
  return Schema(std::move(cols));
}

std::vector<ScalarPred> RelFilters(const QuerySpec& spec, int r) {
  std::vector<ScalarPred> out;
  const std::string& alias = spec.relations[r].alias;
  for (const FilterPred& f : spec.filters) {
    if (f.rel != r) continue;
    ScalarPred p;
    p.column = alias + "." + f.column;
    p.op = f.op;
    p.rhs_is_column = f.rhs_is_column;
    p.literal = f.literal;
    if (f.rhs_is_column) p.rhs_column = alias + "." + f.rhs_column;
    out.push_back(std::move(p));
  }
  return out;
}

void FillOutputEstimates(PlanNode* n, const DerivedRel& stats,
                         double cost_self, double children_total) {
  n->est.cardinality = stats.rows;
  n->est.avg_tuple_bytes = stats.avg_tuple_bytes;
  n->est.pages = stats.Pages();
  n->est.cost_self_ms = cost_self;
  n->est.cost_total_ms = cost_self + children_total;
  n->improved = n->est;  // until run-time observations arrive
}

Status Planner::PlanBaseRel(int r) {
  const RelationRef& ref = spec->relations[r];
  ASSIGN_OR_RETURN(const TableInfo* info, catalog->Get(ref.table));
  ASSIGN_OR_RETURN(DerivedRel raw, est.RawRel(r));
  ASSIGN_OR_RETURN(DerivedRel filtered, est.BaseRel(r));
  const uint32_t mask = 1u << r;

  // Sequential scan with pushed-down filters.
  {
    auto n = std::make_unique<PlanNode>();
    n->kind = OpKind::kSeqScan;
    n->table = ref.table;
    n->alias = ref.alias;
    n->filters = RelFilters(*spec, r);
    n->output_schema = ScanSchema(*info, ref.alias);
    n->covers = {r};
    double c = cost->SeqScan(static_cast<double>(info->heap->page_count()),
                             raw.rows);
    FillOutputEstimates(n.get(), filtered, c, 0);
    n->est.selectivity = raw.rows > 0 ? filtered.rows / raw.rows : 1.0;
    Offer(mask, std::move(n), filtered, c);
  }

  // Index scans: one candidate per index whose column carries a literal
  // equality or range filter.
  if (opts->enable_index_scan) {
    for (const auto& [col, index] : info->indexes) {
      bool has_pred = false;
      std::optional<int64_t> lo, hi;
      for (const FilterPred& f : spec->filters) {
        if (f.rel != r || f.column != col || f.rhs_is_column) continue;
        if (f.literal.is_string()) continue;
        int64_t v = static_cast<int64_t>(f.literal.AsNumeric());
        switch (f.op) {
          case CmpOp::kEq:
            lo = lo ? std::max(*lo, v) : v;
            hi = hi ? std::min(*hi, v) : v;
            has_pred = true;
            break;
          case CmpOp::kLt:
            hi = hi ? std::min(*hi, v - 1) : v - 1;
            has_pred = true;
            break;
          case CmpOp::kLe:
            hi = hi ? std::min(*hi, v) : v;
            has_pred = true;
            break;
          case CmpOp::kGt:
            lo = lo ? std::max(*lo, v + 1) : v + 1;
            has_pred = true;
            break;
          case CmpOp::kGe:
            lo = lo ? std::max(*lo, v) : v;
            has_pred = true;
            break;
          default:
            break;
        }
      }
      if (!has_pred) continue;

      // Matches before residual predicates.
      const ColumnStats* cs = raw.Find(ref.alias + "." + col);
      double matches = raw.rows;
      if (cs) {
        const double inf = std::numeric_limits<double>::infinity();
        matches = raw.rows *
                  cs->SelectivityRange(lo ? static_cast<double>(*lo) : -inf,
                                       false,
                                       hi ? static_cast<double>(*hi) : inf,
                                       false, raw.rows);
      }
      matches = std::max(1.0, matches);
      double leaf_pages =
          std::max(1.0, matches / 400.0);  // ~400 index entries per leaf
      double miss =
          MissProb(static_cast<double>(info->heap->page_count()));

      auto n = std::make_unique<PlanNode>();
      n->kind = OpKind::kIndexScan;
      n->table = ref.table;
      n->alias = ref.alias;
      n->index_column = col;
      n->range_lo = lo;
      n->range_hi = hi;
      n->filters = RelFilters(*spec, r);  // residuals re-checked after fetch
      n->output_schema = ScanSchema(*info, ref.alias);
      n->covers = {r};
      double c = cost->IndexScan(index->height(), matches, leaf_pages, miss);
      FillOutputEstimates(n.get(), filtered, c, 0);
      n->est.selectivity = raw.rows > 0 ? filtered.rows / raw.rows : 1.0;
      Offer(mask, std::move(n), filtered, c);
    }
  }
  return Status::OK();
}

Status Planner::TryJoin(uint32_t left_mask, int r) {
  auto left_it = dp.find(left_mask);
  auto right_it = dp.find(1u << r);
  if (left_it == dp.end() || right_it == dp.end()) return Status::OK();
  DpEntry& left = left_it->second;
  DpEntry& right = right_it->second;

  // Join predicates connecting the left subset with r.
  std::vector<const JoinPred*> preds;
  for (const JoinPred& j : spec->joins) {
    bool lr = (left_mask >> j.left_rel & 1) && j.right_rel == r;
    bool rl = (left_mask >> j.right_rel & 1) && j.left_rel == r;
    if (lr || rl) preds.push_back(&j);
  }

  const uint32_t mask = left_mask | (1u << r);
  DerivedRel joined = est.Join(left.stats, right.stats, preds);

  auto make_hash_join = [&](DpEntry& build, DpEntry& probe,
                            bool build_is_left_subset) {
    auto n = std::make_unique<PlanNode>();
    n->kind = OpKind::kHashJoin;
    for (const JoinPred* p : preds) {
      std::string lq = spec->Qualified(ColumnId{p->left_rel, p->left_col});
      std::string rq = spec->Qualified(ColumnId{p->right_rel, p->right_col});
      // Keys on the build (child 0) side go to left_keys.
      bool left_pred_on_build = build_is_left_subset
                                    ? (left_mask >> p->left_rel & 1) != 0
                                    : p->left_rel == r;
      if (left_pred_on_build) {
        n->left_keys.push_back(lq);
        n->right_keys.push_back(rq);
      } else {
        n->left_keys.push_back(rq);
        n->right_keys.push_back(lq);
      }
    }
    n->output_schema = Schema::Concat(build.plan->output_schema,
                                      probe.plan->output_schema);
    n->covers = build.plan->covers;
    n->covers.insert(probe.plan->covers.begin(), probe.plan->covers.end());
    int passes = 0;
    double c = cost->HashJoin(build.stats.rows, build.stats.Pages(),
                              probe.stats.rows, probe.stats.Pages(),
                              opts->assumed_mem_pages, joined.rows, &passes);
    // Join output column order follows the schema concat; DerivedRel is a
    // map so no reorder is needed.
    DerivedRel out = joined;
    out.avg_tuple_bytes =
        build.stats.avg_tuple_bytes + probe.stats.avg_tuple_bytes;
    double children = build.cost + probe.cost;
    n->children.push_back(build.plan->Clone());
    n->children.push_back(probe.plan->Clone());
    FillOutputEstimates(n.get(), out, c, children);
    Offer(mask, std::move(n), out, children + c);
  };

  // Sort-merge join: explicit sorts on the join keys become blocking
  // stages of their own (more re-optimization points); competitive when
  // both inputs fit sort memory or are badly skewed for hashing.
  auto make_merge_join = [&]() {
    auto wrap_sort = [&](DpEntry& e,
                         const std::vector<std::string>& keys) {
      auto sort = std::make_unique<PlanNode>();
      sort->kind = OpKind::kSort;
      for (const std::string& k : keys) sort->sort_keys.emplace_back(k, true);
      sort->output_schema = e.plan->output_schema;
      sort->covers = e.plan->covers;
      double c = cost->Sort(e.stats.rows, e.stats.Pages(),
                            opts->assumed_mem_pages);
      sort->children.push_back(e.plan->Clone());
      FillOutputEstimates(sort.get(), e.stats, c, e.cost);
      return sort;
    };
    auto n = std::make_unique<PlanNode>();
    n->kind = OpKind::kMergeJoin;
    for (const JoinPred* p : preds) {
      std::string lq = spec->Qualified(ColumnId{p->left_rel, p->left_col});
      std::string rq = spec->Qualified(ColumnId{p->right_rel, p->right_col});
      bool pred_left_in_subset = (left_mask >> p->left_rel & 1) != 0;
      n->left_keys.push_back(pred_left_in_subset ? lq : rq);
      n->right_keys.push_back(pred_left_in_subset ? rq : lq);
    }
    std::unique_ptr<PlanNode> lsort = wrap_sort(left, n->left_keys);
    std::unique_ptr<PlanNode> rsort = wrap_sort(right, n->right_keys);
    n->output_schema = Schema::Concat(lsort->output_schema,
                                      rsort->output_schema);
    n->covers = left.plan->covers;
    n->covers.insert(right.plan->covers.begin(), right.plan->covers.end());
    double children = lsort->est.cost_total_ms + rsort->est.cost_total_ms;
    double c = cost->MergeJoin(left.stats.rows, right.stats.rows, joined.rows);
    n->children.push_back(std::move(lsort));
    n->children.push_back(std::move(rsort));
    DerivedRel out = joined;
    FillOutputEstimates(n.get(), out, c, children);
    Offer(mask, std::move(n), out, children + c);
  };

  if (!preds.empty()) {
    make_hash_join(left, right, /*build_is_left_subset=*/true);
    if (!opts->build_on_left_subtree || __builtin_popcount(left_mask) == 1)
      make_hash_join(right, left, /*build_is_left_subset=*/false);
    if (opts->enable_sort_merge_join) make_merge_join();
  } else {
    // Cross product: only via (cheap) hash join with no keys.
    make_hash_join(right, left, false);
  }

  // Indexed nested-loops join: outer = left subset, inner = base relation r
  // with an index on its join column.
  if (opts->enable_index_nl_join && !preds.empty()) {
    const RelationRef& ref = spec->relations[r];
    Result<const TableInfo*> info_r = catalog->Get(ref.table);
    if (!info_r.ok()) return info_r.status();
    const TableInfo* info = info_r.value();
    for (const JoinPred* p : preds) {
      const std::string& inner_col = p->left_rel == r ? p->left_col : p->right_col;
      const std::string& outer_q =
          p->left_rel == r ? spec->Qualified(ColumnId{p->right_rel, p->right_col})
                           : spec->Qualified(ColumnId{p->left_rel, p->left_col});
      const BTree* index = info->FindIndex(inner_col);
      if (index == nullptr) continue;

      ASSIGN_OR_RETURN(DerivedRel raw_r, est.RawRel(r));
      // Matches fetched per index probe, before residual filters.
      const ColumnStats* ics = raw_r.Find(ref.alias + "." + inner_col);
      double d_inner = (ics && ics->distinct > 0) ? ics->distinct : raw_r.rows;
      double matches = left.stats.rows * raw_r.rows / std::max(1.0, d_inner);
      double miss = MissProb(static_cast<double>(info->heap->page_count()));

      auto n = std::make_unique<PlanNode>();
      n->kind = OpKind::kIndexNLJoin;
      n->table = ref.table;
      n->alias = ref.alias;
      n->index_column = inner_col;
      n->left_keys.push_back(outer_q);           // outer key column
      n->right_keys.push_back(ref.alias + "." + inner_col);
      n->filters = RelFilters(*spec, r);  // inner residual filters
      // Remaining join predicates become residual filters too.
      for (const JoinPred* q : preds) {
        if (q == p) continue;
        ScalarPred sp;
        sp.column = spec->Qualified(ColumnId{q->left_rel, q->left_col});
        sp.op = CmpOp::kEq;
        sp.rhs_is_column = true;
        sp.rhs_column = spec->Qualified(ColumnId{q->right_rel, q->right_col});
        n->filters.push_back(std::move(sp));
      }
      n->output_schema = Schema::Concat(left.plan->output_schema,
                                        ScanSchema(*info, ref.alias));
      n->covers = left.plan->covers;
      n->covers.insert(r);
      double c = cost->IndexNLJoin(left.stats.rows, index->height(), matches,
                                   miss);
      n->children.push_back(left.plan->Clone());
      FillOutputEstimates(n.get(), joined, c, left.cost);
      Offer(mask, std::move(n), joined, left.cost + c);
    }
  }
  return Status::OK();
}

Status Planner::PlanJoins() {
  const int n = static_cast<int>(spec->relations.size());
  const uint32_t full = (1u << n) - 1;
  // Enumerate left-deep plans by subset size.
  for (int size = 2; size <= n; ++size) {
    for (uint32_t mask = 1; mask <= full; ++mask) {
      if (__builtin_popcount(mask) != size) continue;
      for (int r = 0; r < n; ++r) {
        if (!(mask >> r & 1)) continue;
        uint32_t left_mask = mask & ~(1u << r);
        if (left_mask == 0) continue;
        // Skip cross products when the subset has connected splits.
        bool connected = false;
        for (const JoinPred& j : spec->joins) {
          if (((left_mask >> j.left_rel & 1) && j.right_rel == r) ||
              ((left_mask >> j.right_rel & 1) && j.left_rel == r)) {
            connected = true;
            break;
          }
        }
        if (connected) RETURN_IF_ERROR(TryJoin(left_mask, r));
      }
      if (dp.find(mask) == dp.end()) {
        // No connected split: fall back to cross products.
        for (int r = 0; r < n; ++r) {
          if (!(mask >> r & 1)) continue;
          uint32_t left_mask = mask & ~(1u << r);
          if (left_mask == 0) continue;
          RETURN_IF_ERROR(TryJoin(left_mask, r));
        }
      }
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<PlanNode>> Planner::Finish() {
  const uint32_t full = (1u << spec->relations.size()) - 1;
  auto it = dp.find(full);
  if (it == dp.end()) return Status::Internal("optimizer: no complete plan");
  std::unique_ptr<PlanNode> plan = it->second.plan->Clone();
  DerivedRel stats = it->second.stats;
  double total = it->second.cost;

  const bool aggregated = spec->has_aggregates() || !spec->group_by.empty();
  if (aggregated) {
    auto agg = std::make_unique<PlanNode>();
    agg->kind = OpKind::kHashAggregate;
    for (const ColumnId& g : spec->group_by)
      agg->group_cols.push_back(spec->Qualified(g));
    Schema out_schema;
    for (const OutputItem& item : spec->items) {
      if (item.agg == AggFunc::kNone) {
        Column c;
        c.qualifier = "";
        c.name = item.name;
        c.type = item.col.type;
        const ColumnStats* cs = stats.Find(spec->Qualified(item.col));
        if (cs) c.avg_width = cs->avg_width;
        out_schema.AddColumn(c);
        // Source mapping for the executor: group column feeding this output.
        agg->project_cols.push_back(spec->Qualified(item.col));
        continue;
      }
      agg->project_cols.push_back("");  // aggregate output
      AggSpec a;
      a.func = item.agg;
      a.count_star = item.count_star;
      if (!item.count_star) a.column = spec->Qualified(item.col);
      a.out_name = item.name;
      a.out_type = item.agg == AggFunc::kCount ? ValueType::kInt64
                   : (item.agg == AggFunc::kMin || item.agg == AggFunc::kMax)
                       ? item.col.type
                       : ValueType::kDouble;
      agg->aggs.push_back(a);
      Column c;
      c.name = item.name;
      c.type = a.out_type;
      out_schema.AddColumn(c);
    }
    agg->output_schema = out_schema;
    agg->covers = plan->covers;

    double groups = Estimator::GroupCount(stats, agg->group_cols);
    double group_bytes = out_schema.AvgTupleBytes() + 32;  // hash entry overhead
    double c = cost->HashAggregate(stats.rows, stats.Pages(), groups,
                                   group_bytes, opts->assumed_mem_pages);
    DerivedRel out;
    out.rows = groups;
    out.avg_tuple_bytes = out_schema.AvgTupleBytes();
    agg->children.push_back(std::move(plan));
    FillOutputEstimates(agg.get(), out, c, total);
    agg->est.num_groups = groups;
    agg->improved = agg->est;
    plan = std::move(agg);
    stats = out;
    total += c;
    ++enumerated;
  } else {
    auto proj = std::make_unique<PlanNode>();
    proj->kind = OpKind::kProject;
    Schema out_schema;
    for (const OutputItem& item : spec->items) {
      proj->project_cols.push_back(spec->Qualified(item.col));
      proj->project_names.push_back(item.name);
      Column c;
      c.name = item.name;
      c.type = item.col.type;
      out_schema.AddColumn(c);
    }
    proj->output_schema = out_schema;
    proj->covers = plan->covers;
    DerivedRel out = stats;
    out.avg_tuple_bytes = out_schema.AvgTupleBytes();
    double c = 0;  // projection is free (column moves only)
    proj->children.push_back(std::move(plan));
    FillOutputEstimates(proj.get(), out, c, total);
    plan = std::move(proj);
    stats = out;
  }

  if (!spec->order_by.empty()) {
    auto sort = std::make_unique<PlanNode>();
    sort->kind = OpKind::kSort;
    for (const auto& [item_idx, asc] : spec->order_by)
      sort->sort_keys.emplace_back(spec->items[item_idx].name, asc);
    sort->output_schema = plan->output_schema;
    sort->covers = plan->covers;
    double c = cost->Sort(stats.rows, stats.Pages(), opts->assumed_mem_pages);
    sort->children.push_back(std::move(plan));
    FillOutputEstimates(sort.get(), stats, c, total);
    plan = std::move(sort);
    total += c;
  }

  if (spec->limit >= 0) {
    auto lim = std::make_unique<PlanNode>();
    lim->kind = OpKind::kLimit;
    lim->limit = spec->limit;
    lim->output_schema = plan->output_schema;
    lim->covers = plan->covers;
    DerivedRel out = stats;
    out.rows = std::min(out.rows, static_cast<double>(spec->limit));
    lim->children.push_back(std::move(plan));
    FillOutputEstimates(lim.get(), out, 0, total);
    plan = std::move(lim);
  }
  return plan;
}

}  // namespace

void AssignPlanIds(PlanNode* root) {
  int next = 0;
  root->PostOrder([&](PlanNode* n) { n->id = next++; });
}

Result<OptimizeResult> Optimizer::Plan(
    const QuerySpec& spec, const BaseRelOverrides* overrides) const {
  if (spec.relations.empty())
    return Status::InvalidArgument("query has no relations");
  if (spec.relations.size() > 20)
    return Status::NotSupported("too many relations (max 20)");

  Planner planner(catalog_, cost_, &opts_, &spec, overrides, feedback_);
  for (int r = 0; r < static_cast<int>(spec.relations.size()); ++r)
    RETURN_IF_ERROR(planner.PlanBaseRel(r));
  RETURN_IF_ERROR(planner.PlanJoins());
  ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> plan, planner.Finish());
  AssignPlanIds(plan.get());

  OptimizeResult result;
  result.plan = std::move(plan);
  result.plans_enumerated = planner.enumerated;
  result.sim_opt_time_ms =
      static_cast<double>(planner.enumerated) * cost_->params().t_opt_per_plan_ms;
  result.feedback_applied = std::move(planner.feedback_applied);
  return result;
}

}  // namespace reoptdb
