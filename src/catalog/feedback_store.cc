#include "catalog/feedback_store.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "catalog/catalog.h"
#include "obs/json.h"

namespace reoptdb {

namespace {

using obs::JsonValue;

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvHash(const std::string& s) {
  uint64_t h = kFnvOffset;
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

constexpr const char* kManifestHeader = "REOPTFB v1";

double GetNum(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : 0;
}

bool GetBool(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_bool() && v->AsBool();
}

std::string GetStr(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : std::string();
}

JsonValue BaseToJson(const BaseRelFeedback& e) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("kind", JsonValue::MakeString("base"));
  o.Set("table", JsonValue::MakeString(e.table));
  o.Set("sig", JsonValue::MakeString(e.predicate_sig));
  o.Set("rows", JsonValue::MakeNumber(e.observed_rows));
  o.Set("sel", JsonValue::MakeNumber(e.selectivity));
  o.Set("bytes", JsonValue::MakeNumber(e.avg_tuple_bytes));
  o.Set("partial", JsonValue::MakeBool(e.partial));
  o.Set("rows_at_obs", JsonValue::MakeNumber(e.base_rows_at_obs));
  o.Set("activity_at_obs", JsonValue::MakeNumber(e.update_activity_at_obs));
  o.Set("obs", JsonValue::MakeNumber(e.observations));
  JsonValue cols = JsonValue::MakeArray();
  for (const auto& [name, cf] : e.columns) {
    JsonValue c = JsonValue::MakeObject();
    c.Set("name", JsonValue::MakeString(name));
    c.Set("has_bounds", JsonValue::MakeBool(cf.has_bounds));
    c.Set("min", JsonValue::MakeNumber(cf.min));
    c.Set("max", JsonValue::MakeNumber(cf.max));
    c.Set("distinct", JsonValue::MakeNumber(cf.distinct));
    c.Set("lb", JsonValue::MakeBool(cf.distinct_is_lower_bound));
    cols.Append(std::move(c));
  }
  o.Set("cols", std::move(cols));
  return o;
}

JsonValue JoinToJson(const JoinFeedback& e) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("kind", JsonValue::MakeString("join"));
  o.Set("sig", JsonValue::MakeString(e.signature));
  o.Set("rows", JsonValue::MakeNumber(e.observed_rows));
  o.Set("partial", JsonValue::MakeBool(e.partial));
  o.Set("obs", JsonValue::MakeNumber(e.observations));
  JsonValue tables = JsonValue::MakeArray();
  for (const JoinTableMark& m : e.tables) {
    JsonValue t = JsonValue::MakeObject();
    t.Set("name", JsonValue::MakeString(m.table));
    t.Set("rows_at_obs", JsonValue::MakeNumber(m.rows_at_obs));
    t.Set("activity_at_obs", JsonValue::MakeNumber(m.update_activity_at_obs));
    tables.Append(std::move(t));
  }
  o.Set("tables", std::move(tables));
  return o;
}

Result<BaseRelFeedback> BaseFromJson(const JsonValue& o) {
  BaseRelFeedback e;
  e.table = GetStr(o, "table");
  e.predicate_sig = GetStr(o, "sig");
  if (e.table.empty())
    return Status::ParseError("feedback manifest: base entry without table");
  e.observed_rows = GetNum(o, "rows");
  e.selectivity = GetNum(o, "sel");
  e.avg_tuple_bytes = GetNum(o, "bytes");
  e.partial = GetBool(o, "partial");
  e.base_rows_at_obs = GetNum(o, "rows_at_obs");
  e.update_activity_at_obs = GetNum(o, "activity_at_obs");
  e.observations = static_cast<int>(GetNum(o, "obs"));
  if (const JsonValue* cols = o.Find("cols");
      cols != nullptr && cols->is_array()) {
    for (const JsonValue& c : cols->items()) {
      ColumnFeedback cf;
      cf.has_bounds = GetBool(c, "has_bounds");
      cf.min = GetNum(c, "min");
      cf.max = GetNum(c, "max");
      cf.distinct = GetNum(c, "distinct");
      cf.distinct_is_lower_bound = GetBool(c, "lb");
      e.columns[GetStr(c, "name")] = cf;
    }
  }
  return e;
}

Result<JoinFeedback> JoinFromJson(const JsonValue& o) {
  JoinFeedback e;
  e.signature = GetStr(o, "sig");
  if (e.signature.empty())
    return Status::ParseError("feedback manifest: join entry without sig");
  e.observed_rows = GetNum(o, "rows");
  e.partial = GetBool(o, "partial");
  e.observations = static_cast<int>(GetNum(o, "obs"));
  if (const JsonValue* tables = o.Find("tables");
      tables != nullptr && tables->is_array()) {
    for (const JsonValue& t : tables->items()) {
      JoinTableMark m;
      m.table = GetStr(t, "name");
      m.rows_at_obs = GetNum(t, "rows_at_obs");
      m.update_activity_at_obs = GetNum(t, "activity_at_obs");
      e.tables.push_back(std::move(m));
    }
  }
  return e;
}

bool Drifted(double rows_at_obs, double current_rows, double activity_at_obs,
             double current_activity, const FeedbackStoreOptions& opts) {
  double denom = std::max(1.0, rows_at_obs);
  if (std::fabs(current_rows - rows_at_obs) / denom > opts.staleness_rows_frac)
    return true;
  return std::fabs(current_activity - activity_at_obs) >
         opts.staleness_activity;
}

}  // namespace

std::string PredicateSignature(const QuerySpec& spec, int rel_idx) {
  std::vector<std::string> terms;
  for (const FilterPred& f : spec.filters) {
    if (f.rel != rel_idx) continue;
    // Same rendering as QuerySpec::ToSql (minus the alias qualifier: the
    // alias is query-local, the signature must match across queries).
    terms.push_back(f.column + " " + CmpOpName(f.op) + " " +
                    (f.rhs_is_column ? f.rhs_column : f.literal.ToString()));
  }
  std::sort(terms.begin(), terms.end());
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i) out += " AND ";
    out += terms[i];
  }
  return out;
}

std::string JoinSignature(const QuerySpec& spec, const std::set<int>& rels) {
  if (rels.size() < 2) return "";
  std::vector<std::string> parts;
  for (int r : rels) {
    if (r < 0 || r >= static_cast<int>(spec.relations.size())) return "";
    parts.push_back(spec.relations[r].table + "[" +
                    PredicateSignature(spec, r) + "]");
  }
  std::sort(parts.begin(), parts.end());
  std::vector<std::string> preds;
  for (const JoinPred& j : spec.joins) {
    if (rels.count(j.left_rel) == 0 || rels.count(j.right_rel) == 0) continue;
    std::string l = spec.relations[j.left_rel].table + "." + j.left_col;
    std::string r = spec.relations[j.right_rel].table + "." + j.right_col;
    if (r < l) std::swap(l, r);
    preds.push_back(l + "=" + r);
  }
  // A subset with no join predicate among its members is a cross product;
  // its cardinality is derivable from the inputs and not worth keying.
  if (preds.empty()) return "";
  std::sort(preds.begin(), preds.end());
  std::string out = "J{";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += ",";
    out += parts[i];
  }
  out += "|";
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i) out += "&";
    out += preds[i];
  }
  out += "}";
  return out;
}

void CardinalityFeedbackStore::ObserveBaseRel(BaseRelFeedback obs) {
  ++counters_.observations;
  ++generation_;
  const std::string key = BaseKey(obs.table, obs.predicate_sig);
  auto it = base_.find(key);
  if (it == base_.end()) {
    obs.observations = 1;
    base_[key] = std::move(obs);
    lru_.push_back("b:" + key);
    EnforceCapacity();
    return;
  }
  BaseRelFeedback& cur = it->second;
  if (obs.partial && !cur.partial) {
    // A prefix count can only *raise* an exact entry, never lower it.
    if (obs.observed_rows > cur.observed_rows) {
      cur.observed_rows = obs.observed_rows;
      cur.selectivity = std::max(cur.selectivity, obs.selectivity);
    }
    for (const auto& [name, cf] : obs.columns) {
      if (cf.distinct <= 0) continue;
      ColumnFeedback& dst = cur.columns[name];
      if (cf.distinct > dst.distinct) {
        dst.distinct = cf.distinct;
        // Raised by a lower bound: the entry's distinct is now itself one,
        // unless the exact estimate already exceeded it.
        dst.distinct_is_lower_bound = true;
      }
    }
    ++cur.observations;
    return;
  }
  if (!obs.partial && cur.partial) {
    // Exact supersedes partial outright.
    obs.observations = cur.observations + 1;
    cur = std::move(obs);
    return;
  }
  if (obs.partial && cur.partial) {
    // Two lower bounds: keep the larger.
    cur.observed_rows = std::max(cur.observed_rows, obs.observed_rows);
    cur.selectivity = std::max(cur.selectivity, obs.selectivity);
    for (const auto& [name, cf] : obs.columns) {
      ColumnFeedback& dst = cur.columns[name];
      if (cf.distinct > dst.distinct) {
        dst.distinct = cf.distinct;
        dst.distinct_is_lower_bound = true;
      }
    }
    cur.base_rows_at_obs = obs.base_rows_at_obs;
    cur.update_activity_at_obs = obs.update_activity_at_obs;
    ++cur.observations;
    return;
  }
  // Both exact: EWMA-blend numerics, adopt the newest column stats and
  // staleness anchors.
  const double a = opts_.blend_alpha;
  cur.observed_rows = a * obs.observed_rows + (1 - a) * cur.observed_rows;
  cur.selectivity = a * obs.selectivity + (1 - a) * cur.selectivity;
  cur.avg_tuple_bytes =
      a * obs.avg_tuple_bytes + (1 - a) * cur.avg_tuple_bytes;
  cur.columns = std::move(obs.columns);
  cur.base_rows_at_obs = obs.base_rows_at_obs;
  cur.update_activity_at_obs = obs.update_activity_at_obs;
  ++cur.observations;
}

void CardinalityFeedbackStore::ObserveJoin(JoinFeedback obs) {
  ++counters_.observations;
  ++generation_;
  auto it = joins_.find(obs.signature);
  if (it == joins_.end()) {
    obs.observations = 1;
    std::string key = obs.signature;
    joins_[key] = std::move(obs);
    lru_.push_back("j:" + key);
    EnforceCapacity();
    return;
  }
  JoinFeedback& cur = it->second;
  if (obs.partial && !cur.partial) {
    if (obs.observed_rows > cur.observed_rows)
      cur.observed_rows = obs.observed_rows;
    ++cur.observations;
    return;
  }
  if (!obs.partial && cur.partial) {
    obs.observations = cur.observations + 1;
    cur = std::move(obs);
    return;
  }
  if (obs.partial && cur.partial) {
    cur.observed_rows = std::max(cur.observed_rows, obs.observed_rows);
    ++cur.observations;
    return;
  }
  const double a = opts_.blend_alpha;
  cur.observed_rows = a * obs.observed_rows + (1 - a) * cur.observed_rows;
  cur.tables = std::move(obs.tables);
  ++cur.observations;
}

const BaseRelFeedback* CardinalityFeedbackStore::LookupBaseRel(
    const std::string& table, const std::string& predicate_sig,
    double current_rows, double current_activity) const {
  auto it = base_.find(BaseKey(table, predicate_sig));
  if (it == base_.end()) {
    ++counters_.base_misses;
    return nullptr;
  }
  if (Drifted(it->second.base_rows_at_obs, current_rows,
              it->second.update_activity_at_obs, current_activity, opts_)) {
    base_.erase(it);
    ++counters_.stale_evictions;
    ++counters_.base_misses;
    ++generation_;
    return nullptr;
  }
  ++counters_.base_hits;
  return &it->second;
}

const JoinFeedback* CardinalityFeedbackStore::LookupJoin(
    const std::string& signature, const Catalog& catalog) const {
  auto it = joins_.find(signature);
  if (it == joins_.end()) {
    ++counters_.join_misses;
    return nullptr;
  }
  for (const JoinTableMark& m : it->second.tables) {
    Result<const TableInfo*> info = catalog.Get(m.table);
    bool stale =
        !info.ok() ||
        Drifted(m.rows_at_obs,
                static_cast<double>(info.value()->heap->tuple_count()),
                m.update_activity_at_obs, info.value()->stats.update_activity,
                opts_);
    if (stale) {
      joins_.erase(it);
      ++counters_.stale_evictions;
      ++counters_.join_misses;
      ++generation_;
      return nullptr;
    }
  }
  ++counters_.join_hits;
  return &it->second;
}

void CardinalityFeedbackStore::InvalidateTable(const std::string& table) {
  for (auto it = base_.begin(); it != base_.end();) {
    if (it->second.table == table) {
      it = base_.erase(it);
      ++generation_;
    } else {
      ++it;
    }
  }
  for (auto it = joins_.begin(); it != joins_.end();) {
    bool hit = false;
    for (const JoinTableMark& m : it->second.tables) hit |= m.table == table;
    if (hit) {
      it = joins_.erase(it);
      ++generation_;
    } else {
      ++it;
    }
  }
}

void CardinalityFeedbackStore::Clear() {
  base_.clear();
  joins_.clear();
  lru_.clear();
  counters_ = FeedbackStoreCounters{};
  ++generation_;
}

void CardinalityFeedbackStore::EnforceCapacity() {
  while (base_.size() + joins_.size() > opts_.max_entries && !lru_.empty()) {
    std::string key = std::move(lru_.front());
    lru_.erase(lru_.begin());
    if (key.rfind("b:", 0) == 0) base_.erase(key.substr(2));
    else if (key.rfind("j:", 0) == 0) joins_.erase(key.substr(2));
  }
}

std::string CardinalityFeedbackStore::ExportManifest() const {
  std::ostringstream os;
  os << kManifestHeader << "\n";
  auto emit = [&](const JsonValue& payload) {
    std::string text = payload.Serialize();
    os << FnvHash(text) << " " << text << "\n";
  };
  for (const auto& [key, e] : base_) emit(BaseToJson(e));
  for (const auto& [key, e] : joins_) emit(JoinToJson(e));
  return os.str();
}

Status CardinalityFeedbackStore::ImportManifest(const std::string& manifest) {
  std::istringstream is(manifest);
  std::string line;
  if (!std::getline(is, line) || line != kManifestHeader)
    return Status::ParseError("feedback manifest: bad header");
  std::map<std::string, BaseRelFeedback> base;
  std::map<std::string, JoinFeedback> joins;
  std::vector<std::string> lru;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    char* end = nullptr;
    uint64_t checksum = std::strtoull(line.c_str(), &end, 10);
    if (end == line.c_str() || *end != ' ')
      return Status::ParseError("feedback manifest: malformed record");
    std::string payload(end + 1);
    if (FnvHash(payload) != checksum)
      return Status::ParseError("feedback manifest: checksum mismatch");
    ASSIGN_OR_RETURN(JsonValue o, obs::ParseJson(payload));
    if (!o.is_object())
      return Status::ParseError("feedback manifest: record not an object");
    std::string kind = GetStr(o, "kind");
    if (kind == "base") {
      ASSIGN_OR_RETURN(BaseRelFeedback e, BaseFromJson(o));
      std::string key = BaseKey(e.table, e.predicate_sig);
      lru.push_back("b:" + key);
      base[std::move(key)] = std::move(e);
    } else if (kind == "join") {
      ASSIGN_OR_RETURN(JoinFeedback e, JoinFromJson(o));
      lru.push_back("j:" + e.signature);
      joins[e.signature] = std::move(e);
    } else {
      return Status::ParseError("feedback manifest: unknown record kind '" +
                                kind + "'");
    }
  }
  base_ = std::move(base);
  joins_ = std::move(joins);
  lru_ = std::move(lru);
  ++generation_;
  return Status::OK();
}

std::string CardinalityFeedbackStore::Describe() const {
  std::ostringstream os;
  os << "feedback store: " << base_.size() << " base entries, "
     << joins_.size() << " join entries\n"
     << "  observations=" << counters_.observations
     << " base_hits=" << counters_.base_hits
     << " base_misses=" << counters_.base_misses
     << " join_hits=" << counters_.join_hits
     << " join_misses=" << counters_.join_misses
     << " stale_evictions=" << counters_.stale_evictions << "\n";
  for (const auto& [key, e] : base_) {
    os << "  base " << e.table << " [" << e.predicate_sig << "] rows"
       << (e.partial ? ">=" : "=") << e.observed_rows
       << " sel=" << e.selectivity << " obs=" << e.observations << "\n";
  }
  for (const auto& [key, e] : joins_) {
    os << "  join " << e.signature << " rows" << (e.partial ? ">=" : "=")
       << e.observed_rows << " obs=" << e.observations << "\n";
  }
  return os.str();
}

}  // namespace reoptdb
