#include "shard/shard_cluster.h"

#include <algorithm>
#include <cmath>

#include "shard/replica_manager.h"

namespace reoptdb {

namespace {

/// Route one row under `p` across `num_nodes` nodes. `col_idx` is the
/// partitioning column's position; for range partitioning `lo`/`hi` bound
/// the column's domain (equal-width bins).
int RouteRow(const Tuple& row, const TablePartitioning& p, size_t col_idx,
             int num_nodes, double lo, double hi) {
  if (p.kind == TablePartitioning::Kind::kHash) {
    return static_cast<int>(row.at(col_idx).Hash() %
                            static_cast<uint64_t>(num_nodes));
  }
  // Range: equal-width bins over [lo, hi].
  const double v = row.at(col_idx).AsNumeric();
  if (hi <= lo) return 0;
  const double width = (hi - lo) / static_cast<double>(num_nodes);
  int bin = static_cast<int>(std::floor((v - lo) / width));
  return std::clamp(bin, 0, num_nodes - 1);
}

}  // namespace

constexpr char ShardCluster::kOrdQualifier[];

ShardCluster::ShardCluster(ShardOptions opts) : opts_(std::move(opts)) {
  // The coordinator plans every distributed query, so its optimizer is
  // pinned to the hash-only left-deep profile the executor can distribute:
  // every join is a hash join whose probe side is a base-relation scan.
  DatabaseOptions db_opts = opts_.coordinator;
  db_opts.optimizer.enable_index_nl_join = false;
  db_opts.optimizer.enable_index_scan = false;
  db_opts.optimizer.enable_sort_merge_join = false;
  db_opts.optimizer.build_on_left_subtree = true;
  db_ = std::make_unique<Database>(db_opts);

  const int n = std::max(opts_.num_nodes, 1);
  nodes_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto node = std::make_unique<ShardNode>();
    node->id = i;
    node->slowdown = i < static_cast<int>(opts_.node_slowdown.size())
                         ? std::max(opts_.node_slowdown[static_cast<size_t>(i)],
                                    0.0)
                         : 1.0;
    if (node->slowdown == 0) node->slowdown = 1.0;
    node->disk = std::make_unique<DiskManager>();
    node->disk->set_fault_injector(db_->faults());
    node->pool =
        std::make_unique<BufferPool>(node->disk.get(), opts_.node_pool_pages);
    node->catalog = std::make_unique<Catalog>(node->pool.get());
    nodes_.push_back(std::move(node));
  }
  replicas_ = std::make_unique<ReplicaManager>(this, opts_.replication_factor);
  // Integrity ratchet: a scrub finding anywhere in the cluster forces the
  // coordinator's reoptimizer to revalidate journaled temps before trusting
  // them for a resume (reopt/controller.h).
  db_->SetScrubSignal(&scrub_findings_);
}

ShardCluster::~ShardCluster() = default;

std::vector<int> ShardCluster::AliveNodes() const {
  std::vector<int> out;
  for (const auto& n : nodes_)
    if (n->alive) out.push_back(n->id);
  return out;
}

Status ShardCluster::Shard(const std::string& table, TablePartitioning p) {
  ASSIGN_OR_RETURN(TableInfo * info, db_->catalog()->Get(table));
  if (!p.partitioned())
    return Status::InvalidArgument("partitioning kind required: " + table);
  ASSIGN_OR_RETURN(size_t col_idx, info->schema.IndexOf(p.column));
  if (p.kind == TablePartitioning::Kind::kRange &&
      info->schema.column(col_idx).type == ValueType::kString)
    return Status::NotSupported("range partitioning requires a numeric column");
  p.num_shards = num_nodes();

  // Range bounds from the data itself (one pass; exact, not estimated).
  double lo = 0, hi = 0;
  if (p.kind == TablePartitioning::Kind::kRange) {
    bool seen = false;
    HeapFile::Iterator it = info->heap->Scan();
    Tuple t;
    while (true) {
      ASSIGN_OR_RETURN(bool more, it.Next(&t));
      if (!more) break;
      const double v = t.at(col_idx).AsNumeric();
      if (!seen) {
        lo = hi = v;
        seen = true;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }

  // (Re-)create the per-node partition tables: coordinator schema plus the
  // trailing global-ordinal column.
  Schema part_schema = info->schema;
  part_schema.AddColumn(
      Column{kOrdQualifier, OrdColumnName(table), ValueType::kInt64, 8.0});
  std::vector<TableInfo*> part_tables(nodes_.size(), nullptr);
  for (auto& node : nodes_) {
    if (!node->alive) continue;
    if (node->catalog->Exists(table))
      RETURN_IF_ERROR(node->catalog->Drop(table));
    ASSIGN_OR_RETURN(TableInfo * pt,
                     node->catalog->CreateTable(table, part_schema));
    part_tables[static_cast<size_t>(node->id)] = pt;
  }

  // Route every coordinator row, carrying its append ordinal. Dead nodes'
  // slices go straight to survivors (same rule RehomeDeadNode applies).
  std::vector<int>& route = routes_[table];
  route.clear();
  const std::vector<int> alive = AliveNodes();
  if (alive.empty()) return Status::Internal("no alive nodes");
  HeapFile::Iterator it = info->heap->Scan();
  Tuple t;
  uint64_t ord = 0;
  while (true) {
    ASSIGN_OR_RETURN(bool more, it.Next(&t));
    if (!more) break;
    int target = RouteRow(t, p, col_idx, num_nodes(), lo, hi);
    if (!nodes_[static_cast<size_t>(target)]->alive)
      target = alive[ord % alive.size()];
    route.push_back(target);
    Tuple part_row = t;
    part_row.Append(Value(static_cast<int64_t>(ord)));
    RETURN_IF_ERROR(
        part_tables[static_cast<size_t>(target)]->heap->Append(part_row)
            .status());
    ++ord;
  }
  for (auto& node : nodes_) {
    TableInfo* pt = part_tables[static_cast<size_t>(node->id)];
    if (pt == nullptr) continue;
    RETURN_IF_ERROR(pt->heap->Flush());
    TableStats st = info->stats;  // column stats approximate the slice
    st.analyzed = true;
    st.row_count = static_cast<double>(pt->heap->tuple_count());
    st.page_count = static_cast<double>(pt->heap->page_count());
    st.avg_tuple_bytes = pt->heap->avg_tuple_bytes();
    RETURN_IF_ERROR(node->catalog->SetStats(table, std::move(st)));
  }
  RETURN_IF_ERROR(replicas_->PlaceReplicas(table));
  return db_->catalog()->SetPartitioning(table, std::move(p));
}

ShardCluster::BeatVerdict ShardCluster::ReportMissedBeat(int id) {
  ShardNode* n = nodes_[static_cast<size_t>(id)].get();
  if (n->health == NodeHealth::kAlive) {
    n->health = NodeHealth::kSuspect;
    n->missed_beats = 0;
    n->lease_expiry_ms = cluster_ms_ + opts_.lease_ms;
  }
  ++n->missed_beats;
  if (n->missed_beats >= opts_.max_missed_beats ||
      cluster_ms_ >= n->lease_expiry_ms)
    return BeatVerdict::kDead;
  return BeatVerdict::kSuspect;
}

void ShardCluster::ClearSuspicion(int id) {
  ShardNode* n = nodes_[static_cast<size_t>(id)].get();
  if (n->health == NodeHealth::kSuspect) {
    n->health = NodeHealth::kAlive;
    n->missed_beats = 0;
    n->lease_expiry_ms = 0;
  }
}

Status ShardCluster::MarkDead(int id) {
  if (id < 0 || id >= num_nodes())
    return Status::InvalidArgument("no such node");
  ShardNode* n = nodes_[static_cast<size_t>(id)].get();
  n->alive = false;
  n->health = NodeHealth::kDead;
  // Freeze the epoch the node last observed, then advance the membership
  // epoch: any send the node attempts after this point carries a stale
  // stamp and is fenced at the exchange channel.
  n->epoch_seen = epoch_;
  ++epoch_;
  last_dead_ = id;
  return Status::OK();
}

Result<ShardCluster::RehomeResult> ShardCluster::RehomeDeadNode(
    int dead, std::vector<ReplicaRepairRecord>* repairs) {
  if (dead < 0 || dead >= num_nodes())
    return Status::InvalidArgument("no such node");
  if (nodes_[static_cast<size_t>(dead)]->alive)
    return Status::InvalidArgument("node is alive");
  ASSIGN_OR_RETURN(RehomeResult res,
                   replicas_->FailoverDeadNode(dead, repairs));
  // Failover is itself a membership change (routes moved, copies added):
  // bump the epoch so in-flight work from before the move is fenced.
  ++epoch_;
  return res;
}

int ShardCluster::RouteOf(const std::string& table, uint64_t ord) const {
  auto it = routes_.find(table);
  if (it == routes_.end() || ord >= it->second.size()) return -1;
  return it->second[ord];
}

size_t ShardCluster::LivePagesAliveNodes() const {
  size_t total = db_->disk()->live_pages();
  for (const auto& n : nodes_)
    if (n->alive) total += n->disk->live_pages();
  return total;
}

}  // namespace reoptdb
