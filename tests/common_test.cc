// Tests for Status / Result / Rng / logging.

#include <map>
#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "gtest/gtest.h"

namespace reoptdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::BindError("x").code(), StatusCode::kBindError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = UseAssignOrReturn(3, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.Next() == b.Next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (uint64_t n : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(n), n);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // uniform mean
}

TEST(RngTest, ForkIndependent) {
  Rng a(5);
  Rng b = a.Fork();
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, BoolProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.NextBool(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(SplitMix64Test, AvalanchesSingleBit) {
  // Flipping one input bit should change roughly half the output bits.
  uint64_t base = SplitMix64(0x12345678);
  int diff = __builtin_popcountll(base ^ SplitMix64(0x12345679));
  EXPECT_GT(diff, 16);
  EXPECT_LT(diff, 48);
}

TEST(LoggingTest, LevelGate) {
  LogLevel prev = SetLogLevel(LogLevel::kOff);
  REOPTDB_LOG(kError) << "suppressed";  // must not crash
  SetLogLevel(LogLevel::kDebug);
  REOPTDB_LOG(kDebug) << "emitted";
  SetLogLevel(prev);
  EXPECT_EQ(GetLogLevel(), prev);
}

}  // namespace
}  // namespace reoptdb
