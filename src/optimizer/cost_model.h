// Cost model shared by the optimizer (estimates) and the execution engine
// (actuals).
//
// Execution "time" is deterministic: page I/Os and per-tuple CPU operations
// are counted and converted to milliseconds with the constants below. The
// optimizer predicts the same quantities from its cardinality estimates, so
// optimizer-vs-observed comparisons (the heart of the paper's reopt gate)
// are apples-to-apples.

#ifndef REOPTDB_OPTIMIZER_COST_MODEL_H_
#define REOPTDB_OPTIMIZER_COST_MODEL_H_

#include <cstdint>

namespace reoptdb {

/// Calibration constants (defaults approximate a late-90s disk-bound node:
/// 1 ms per 8K page, microseconds per tuple of CPU work).
struct CostParams {
  double t_io_ms = 1.0;            ///< per page read or written
  double t_cpu_tuple_ms = 0.002;   ///< per tuple passing through an operator
  double t_hash_ms = 0.001;        ///< per hash-table insert or probe
  double t_cmp_ms = 0.0005;        ///< per comparison (sorts)
  double t_stat_ms = 0.0002;       ///< per tuple per collected statistic
  /// Per tuple per numeric column of min/max maintenance. Much cheaper
  /// than a histogram/sketch update (two comparisons on an already
  /// deserialized value), but not free: wide schemas make it add up.
  double t_minmax_ms = 0.00002;
  double hash_fudge = 1.2;         ///< F: hash-table space overhead factor
  double t_opt_per_plan_ms = 0.02; ///< simulated optimizer cost per plan
                                   ///< enumerated (calibrated; Section 2.4)
  /// Network cost term for sharded execution (src/shard): exchange
  /// operators charge per byte moved plus a fixed per-message overhead.
  /// Defaults model a late-90s cluster interconnect: ~50 MB/s effective
  /// throughput and a visible per-message setup cost, so shipping a big
  /// build side is comparable to re-reading it from disk — which is what
  /// makes the broadcast-vs-repartition decision non-trivial.
  double t_net_byte_ms = 0.00002;  ///< per byte on an exchange channel
  double t_net_msg_ms = 0.05;      ///< per message (batch of tuples)
};

/// Counters of CPU-side work performed during execution.
struct CpuWork {
  uint64_t tuples = 0;
  uint64_t hash_ops = 0;
  uint64_t cmp_ops = 0;
  uint64_t stat_ops = 0;
  uint64_t minmax_ops = 0;  ///< per-column min/max maintenance steps

  CpuWork operator-(const CpuWork& o) const {
    return CpuWork{tuples - o.tuples, hash_ops - o.hash_ops,
                   cmp_ops - o.cmp_ops, stat_ops - o.stat_ops,
                   minmax_ops - o.minmax_ops};
  }
};

/// \brief Cost formulas for every physical operator.
class CostModel {
 public:
  explicit CostModel(CostParams params = CostParams{}) : params_(params) {}

  const CostParams& params() const { return params_; }

  /// Converts work counters + page I/Os into simulated milliseconds.
  double TimeMs(uint64_t page_ios, const CpuWork& cpu) const;

  // --- Operator self-costs (excluding children). All sizes in pages,
  //     cardinalities in rows.

  double SeqScan(double pages, double rows) const;

  /// Index range scan: tree descent + leaf walk + per-match heap fetches.
  /// `match_io_prob` models buffer-pool absorption of repeated heap hits.
  double IndexScan(double height, double matches, double leaf_pages,
                   double match_io_prob) const;

  /// Hybrid hash join. Sets `*passes` to the number of partitioning passes
  /// (0 = in-memory one-pass).
  double HashJoin(double build_rows, double build_pages, double probe_rows,
                  double probe_pages, double mem_pages, double out_rows,
                  int* passes) const;

  /// Merge phase of a sort-merge join (the sorts are separate nodes).
  double MergeJoin(double left_rows, double right_rows, double out_rows) const;

  /// Indexed nested-loops join: one index probe per outer row.
  double IndexNLJoin(double outer_rows, double inner_height,
                     double total_matches, double match_io_prob) const;

  /// Hash aggregation with partition spilling when groups exceed memory.
  double HashAggregate(double in_rows, double in_pages, double groups,
                       double group_bytes, double mem_pages) const;

  /// External merge sort.
  double Sort(double rows, double pages, double mem_pages) const;

  /// Write out + read back of an intermediate result.
  double Materialize(double pages) const;

  /// One-way transfer of `bytes` in `msgs` messages over an exchange
  /// channel (sharded execution). Charged symmetrically: the sender and
  /// the receiver each pay this once per transfer.
  double NetTransfer(double bytes, double msgs) const;

  /// Statistics collector: per-tuple cost per statistic collected.
  /// `minmax_cols` is the number of numeric columns whose min/max the
  /// collector maintains — real work the run-time charges, so the estimate
  /// must account for it too (0 keeps legacy call sites unchanged).
  double Collector(double rows, int num_stats, int minmax_cols = 0) const;

  // --- Memory demands (pages), following the paper's Fig. 3 narrative:
  //     hash join max = F x build size + overhead, min = sqrt of that.

  double HashJoinMaxMem(double build_pages) const;
  double HashJoinMinMem(double build_pages) const;
  double AggregateMaxMem(double groups, double group_bytes) const;
  double AggregateMinMem(double groups, double group_bytes) const;
  double SortMaxMem(double input_pages) const;
  double SortMinMem(double input_pages) const;

 private:
  CostParams params_;
};

}  // namespace reoptdb

#endif  // REOPTDB_OPTIMIZER_COST_MODEL_H_
