#!/usr/bin/env bash
# Tier-1 verification: full build + full test suite, then a sanitizer pass
# (ASan + UBSan) over the fault-injection and re-optimization tests, which
# exercise the error/rollback paths most likely to hide lifetime bugs.
#
#   tools/run_tier1.sh [build-dir] [asan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
ASAN_BUILD="${2:-build-asan}"

echo "== tier-1: configure + build (${BUILD}) =="
cmake -B "${BUILD}" -S . >/dev/null
cmake --build "${BUILD}" -j

echo "== tier-1: full test suite =="
ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)"

echo "== tier-1: ASan+UBSan fault/reopt tests (${ASAN_BUILD}) =="
cmake -B "${ASAN_BUILD}" -S . -DREOPTDB_SANITIZE=ON >/dev/null
cmake --build "${ASAN_BUILD}" -j --target fault_test reopt_test reopt_extension_test
# Run the binaries directly: ctest -R filters per-test names, which would
# silently skip suites whose names don't contain "fault"/"reopt".
"${ASAN_BUILD}/tests/fault_test"
"${ASAN_BUILD}/tests/reopt_test"
"${ASAN_BUILD}/tests/reopt_extension_test"

echo "== tier-1: OK =="
