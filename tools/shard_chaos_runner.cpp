// Sharded-execution chaos harness: seeded node-crash, link-failure, and
// skew schedules over the paper's TPC-D mix, every distributed answer
// diffed against a crash-free single-node oracle on the same data.
//
// Three phases, all on simulated clocks so the emitted numbers are exactly
// reproducible for a given seed:
//
//   1. Equivalence sweep — every TPC-D query at 2/4/8 nodes, row-at-a-time
//      and batched fragments, must be bit-identical (Canon) to the
//      coordinator-only oracle. The 4-node pass runs twice and the live
//      page count must return to its post-first-pass value: temps,
//      journals, and exchange buffers all drained.
//
//   2. Crash schedules — seeded sweeps arming one cluster point
//      (node.crash, net.send, net.recv) with `error:nth:K`; the run must
//      either absorb the fault (retry/backoff), or lose the node and
//      complete on the survivors via re-homing + journal validation —
//      never mismatch, never crash untyped. A fault-free re-run on the
//      shrunken cluster must still match the oracle with stable pages.
//
//   3. Skew bench — the zipf build whose stale estimate hides it: the
//      defended run (mid-query distribution switch) must beat the
//      no-reopt control's charged makespan.
//
//   4. Replicated crash sweep — the same seeded node-crash schedules on
//      k=2 clusters: a lost node must be rebuilt purely from surviving
//      replicas (zero coordinator re-read rows in the trace), and the
//      answer must still match the oracle.
//
//   5. Scrub sweep — seeded bit-rot injected into random (table, node,
//      role) copies of a k=2 cluster; one anti-entropy pass must detect
//      and repair 100% of the rotten copies, and a second pass must come
//      back quiet.
//
//   6. Repair bench — time-to-repair for one dead node: replica
//      promotion (k=2) vs coordinator re-read (k=1), emitted to the
//      replication JSON for the paper's robustness table.
//
//   shard_chaos_runner [--seed N] [--schedules N] [--scale F] [--json PATH]
//                      [--json-replication PATH] [--verbose]
//
// Exit status 0 only if every schedule converged on the oracle with zero
// leaks, the skew defense paid off, replica failover never touched the
// coordinator, and every injected rot was scrubbed out.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "shard/replica_manager.h"
#include "shard/scrubber.h"
#include "shard/sharded_executor.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

bool Verbose = false;

/// Canonical form of a result set: one rendered string per row, sorted;
/// doubles rounded so aggregates compare equal bit-for-bit.
std::vector<std::string> Canon(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::string s;
    for (size_t i = 0; i < t.size(); ++i) {
      const Value& v = t.at(i);
      if (i) s += "|";
      if (v.is_double()) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", v.AsDouble());
        s += buf;
      } else {
        s += v.ToString();
      }
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// TPC-D tables and the primary keys they shard by.
constexpr std::pair<const char*, const char*> kShardKeys[] = {
    {"region", "r_regionkey"},   {"nation", "n_nationkey"},
    {"supplier", "s_suppkey"},   {"customer", "c_custkey"},
    {"part", "p_partkey"},       {"partsupp", "ps_partkey"},
    {"orders", "o_orderkey"},    {"lineitem", "l_orderkey"},
};

/// A TPC-D cluster: generator data (stale catalog, so distribution
/// switches actually fire) sharded by primary key across `nodes`.
std::unique_ptr<ShardCluster> MakeTpcdCluster(int nodes, double scale,
                                              int replicas = 1) {
  ShardOptions so;
  so.num_nodes = nodes;
  so.replication_factor = replicas;
  auto cluster = std::make_unique<ShardCluster>(so);
  tpcd::TpcdOptions gen;
  gen.scale_factor = scale;
  gen.update_fraction = 1.0;
  Status st = tpcd::Load(cluster->db(), gen);
  if (!st.ok()) {
    std::fprintf(stderr, "dbgen failed: %s\n", st.ToString().c_str());
    std::exit(2);
  }
  for (const auto& [table, col] : kShardKeys) {
    st = cluster->ShardByHash(table, col);
    if (!st.ok()) {
      std::fprintf(stderr, "shard %s failed: %s\n", table,
                   st.ToString().c_str());
      std::exit(2);
    }
  }
  return cluster;
}

struct EquivRow {
  int nodes = 0;
  size_t batch = 0;
  int queries = 0;
  int matched = 0;
  int fallbacks = 0;
  int switches = 0;
  double cluster_ms = 0;
};

/// One pass of the full mix at a node count + batch size. Oracles are
/// computed per cluster (fault-free, coordinator only).
bool RunEquivPass(ShardedExecutor* exec,
                  const std::map<std::string, std::vector<std::string>>& oracle,
                  int nodes, size_t batch, EquivRow* row) {
  row->nodes = nodes;
  row->batch = batch;
  bool ok = true;
  for (const tpcd::TpcdQuery& q : tpcd::AllQueries()) {
    ++row->queries;
    ShardQueryOptions opts;
    opts.batch_size = batch;
    Result<ShardExecResult> r = exec->Execute(q.sql, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "[equiv n=%d b=%zu] %s failed: %s\n", nodes, batch,
                   q.name, r.status().ToString().c_str());
      ok = false;
      continue;
    }
    if (Canon(r->result.rows) != oracle.at(q.name)) {
      std::fprintf(stderr, "[equiv n=%d b=%zu] %s MISMATCH vs oracle\n", nodes,
                   batch, q.name);
      ok = false;
      continue;
    }
    ++row->matched;
    row->fallbacks += r->coordinator_fallback ? 1 : 0;
    row->switches += r->distribution_switches;
    row->cluster_ms += r->cluster_ms;
    if (Verbose)
      std::printf("[equiv n=%d b=%zu] %s ok (%.2f ms, %d switches%s)\n", nodes,
                  batch, q.name, r->cluster_ms, r->distribution_switches,
                  r->coordinator_fallback ? ", fallback" : "");
  }
  return ok;
}

struct CrashTally {
  int schedules = 0;
  int node_losses = 0;
  int absorbed = 0;  ///< fault fired but retries/backoff hid it
  int clean = 0;     ///< armed nth never reached
  int mismatches = 0;
  int errors = 0;
};

/// One seeded crash schedule on a fresh 4-node TPC-D cluster: arm a
/// cluster point, run one query of the mix, diff, then prove the shrunken
/// cluster still serves with stable pages.
bool RunCrashSchedule(uint64_t seed, int which, double scale,
                      CrashTally* tally) {
  ++tally->schedules;
  Rng rng(seed);
  static const char* kPoints[] = {faults::kNodeCrash, faults::kNetSend,
                                  faults::kNetRecv};
  const char* point = kPoints[which % 3];
  const std::vector<tpcd::TpcdQuery> mix = tpcd::AllQueries();
  const tpcd::TpcdQuery& q = mix[static_cast<size_t>(which) % mix.size()];
  const size_t batch = which % 2 ? 1024 : 1;

  std::unique_ptr<ShardCluster> cluster = MakeTpcdCluster(4, scale);
  ShardedExecutor exec(cluster.get());
  Result<QueryResult> oracle = exec.ExecuteSingleNode(q.sql, batch);
  if (!oracle.ok()) {
    std::fprintf(stderr, "[crash seed=%llu] oracle failed: %s\n",
                 static_cast<unsigned long long>(seed),
                 oracle.status().ToString().c_str());
    ++tally->errors;
    return false;
  }
  const std::vector<std::string> want = Canon(oracle->rows);

  const std::string schedule = std::string(point) + "=nth:" +
                               std::to_string(rng.NextInt(1, 50));
  if (!cluster->db()->faults()->Configure(schedule).ok()) {
    ++tally->errors;
    return false;
  }
  ShardQueryOptions opts;
  opts.batch_size = batch;
  Result<ShardExecResult> r = exec.Execute(q.sql, opts);
  const uint64_t fires = cluster->db()->faults()->StatsFor(point).fires;
  cluster->db()->faults()->Reset();
  if (!r.ok()) {
    std::fprintf(stderr, "[crash seed=%llu %s %s] failed: %s\n",
                 static_cast<unsigned long long>(seed), q.name, schedule.c_str(),
                 r.status().ToString().c_str());
    ++tally->errors;
    return false;
  }
  if (Canon(r->result.rows) != want) {
    std::fprintf(stderr, "[crash seed=%llu %s %s] MISMATCH vs oracle\n",
                 static_cast<unsigned long long>(seed), q.name,
                 schedule.c_str());
    ++tally->mismatches;
    return false;
  }
  if (r->nodes_lost > 0)
    ++tally->node_losses;
  else if (fires > 0)
    ++tally->absorbed;
  else
    ++tally->clean;

  // The shrunken cluster must still serve the same answer, and a
  // steady-state query must leave the live page count untouched.
  const size_t pages = cluster->LivePagesAliveNodes();
  Result<ShardExecResult> again = exec.Execute(q.sql, opts);
  if (!again.ok() || Canon(again->result.rows) != want) {
    std::fprintf(stderr, "[crash seed=%llu %s] post-fault re-run diverged\n",
                 static_cast<unsigned long long>(seed), q.name);
    ++tally->errors;
    return false;
  }
  if (cluster->LivePagesAliveNodes() != pages) {
    std::fprintf(stderr, "[crash seed=%llu %s] PAGE LEAK: %zu -> %zu\n",
                 static_cast<unsigned long long>(seed), q.name, pages,
                 cluster->LivePagesAliveNodes());
    ++tally->errors;
    return false;
  }
  if (Verbose)
    std::printf("[crash seed=%llu %s %s] ok (%s)\n",
                static_cast<unsigned long long>(seed), q.name, schedule.c_str(),
                r->nodes_lost ? "node lost, survivors answered"
                              : (fires ? "absorbed" : "clean"));
  return true;
}

struct SkewBench {
  double control_ms = 0;
  double defended_ms = 0;
  int switches = 0;
  size_t skews = 0;
  bool matched = false;
};

/// The skew scenario from tests/shard_test.cc at bench scale: a zipf
/// build whose stale estimate makes the planner broadcast it; the
/// defended arm must repartition mid-query and beat the control.
bool RunSkewArm(bool reopt_enabled, SkewBench* bench) {
  ShardOptions so;
  so.num_nodes = 4;
  so.reopt_enabled = reopt_enabled;
  ShardCluster cluster(so);
  Database* db = cluster.db();
  Schema orders(std::vector<Column>{{"", "order_id", ValueType::kInt64, 8},
                                    {"", "cust_id", ValueType::kInt64, 8},
                                    {"", "amount", ValueType::kDouble, 8}});
  Schema cust(std::vector<Column>{{"", "cust_id", ValueType::kInt64, 8},
                                  {"", "region", ValueType::kInt64, 8},
                                  {"", "score", ValueType::kDouble, 8}});
  if (!db->CreateTable("orders", orders).ok() ||
      !db->CreateTable("cust", cust).ok())
    return false;
  Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    const int64_t key = rng.NextBelow(10) < 5
                            ? 0
                            : static_cast<int64_t>(rng.NextBelow(1200));
    if (!db->Insert("orders", Tuple({Value(int64_t{i}), Value(key),
                                     Value(10.0 + i * 0.25)}))
             .ok())
      return false;
  }
  for (int c = 0; c < 1200; ++c)
    if (!db->Insert("cust", Tuple({Value(int64_t{c}), Value(int64_t{c % 5}),
                                   Value(1.0 + c * 0.5)}))
             .ok())
      return false;
  if (!db->Analyze("orders").ok() || !db->Analyze("cust").ok()) return false;
  if (!cluster.ShardByHash("orders", "order_id").ok() ||
      !cluster.ShardByHash("cust", "cust_id").ok())
    return false;
  Result<TableInfo*> info = db->catalog()->Get("orders");
  if (!info.ok()) return false;
  TableStats stale = info.value()->stats;
  stale.row_count = 40;
  stale.page_count = 1;
  if (!db->catalog()->SetStats("orders", std::move(stale)).ok()) return false;

  ShardedExecutor exec(&cluster);
  const std::string sql =
      "SELECT c.region, COUNT(*) AS n FROM orders o, cust c "
      "WHERE o.cust_id = c.cust_id GROUP BY c.region";
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  Result<ShardExecResult> r = exec.Execute(sql);
  if (!oracle.ok() || !r.ok()) return false;
  bench->matched = Canon(r->result.rows) == Canon(oracle->rows);
  if (reopt_enabled) {
    bench->defended_ms = r->cluster_ms;
    bench->switches = r->distribution_switches;
    bench->skews = r->result.report.trace.shard_skews.size();
  } else {
    bench->control_ms = r->cluster_ms;
  }
  return bench->matched;
}

struct ReplTally {
  int schedules = 0;
  int node_losses = 0;
  int clean = 0;  ///< armed nth never reached (or absorbed)
  int zero_coordinator = 0;  ///< losses recovered without coordinator rows
  uint64_t promoted_rows = 0;
  uint64_t coordinator_rows = 0;
  int mismatches = 0;
  int errors = 0;
};

/// One seeded crash schedule on a k=2 replicated 4-node cluster. Killing
/// one node (<= k-1) must leave a surviving replica of every slice it
/// held, so the trace's loss record must show zero coordinator re-read
/// rows — the whole point of paying for the second copy.
bool RunReplicatedSchedule(uint64_t seed, int which, double scale,
                           ReplTally* tally) {
  ++tally->schedules;
  Rng rng(seed);
  const std::vector<tpcd::TpcdQuery> mix = tpcd::AllQueries();
  const tpcd::TpcdQuery& q = mix[static_cast<size_t>(which) % mix.size()];
  const size_t batch = which % 2 ? 1024 : 1;

  std::unique_ptr<ShardCluster> cluster =
      MakeTpcdCluster(4, scale, /*replicas=*/2);
  ShardedExecutor exec(cluster.get());
  Result<QueryResult> oracle = exec.ExecuteSingleNode(q.sql, batch);
  if (!oracle.ok()) {
    ++tally->errors;
    return false;
  }
  const std::vector<std::string> want = Canon(oracle->rows);

  const std::string schedule =
      std::string(faults::kNodeCrash) + "=nth:" +
      std::to_string(rng.NextInt(1, 50));
  if (!cluster->db()->faults()->Configure(schedule).ok()) {
    ++tally->errors;
    return false;
  }
  ShardQueryOptions opts;
  opts.batch_size = batch;
  Result<ShardExecResult> r = exec.Execute(q.sql, opts);
  cluster->db()->faults()->Reset();
  if (!r.ok()) {
    std::fprintf(stderr, "[repl seed=%llu %s %s] failed: %s\n",
                 static_cast<unsigned long long>(seed), q.name, schedule.c_str(),
                 r.status().ToString().c_str());
    ++tally->errors;
    return false;
  }
  if (Canon(r->result.rows) != want) {
    std::fprintf(stderr, "[repl seed=%llu %s %s] MISMATCH vs oracle\n",
                 static_cast<unsigned long long>(seed), q.name,
                 schedule.c_str());
    ++tally->mismatches;
    return false;
  }
  bool ok = true;
  if (r->nodes_lost > 0) {
    ++tally->node_losses;
    for (const NodeLostRecord& lost : r->result.report.trace.node_losses) {
      tally->promoted_rows += lost.promoted_rows;
      tally->coordinator_rows += lost.coordinator_rows;
      if (lost.coordinator_rows != 0) {
        std::fprintf(stderr,
                     "[repl seed=%llu %s] coordinator re-read %llu rows "
                     "despite a surviving replica\n",
                     static_cast<unsigned long long>(seed), q.name,
                     static_cast<unsigned long long>(lost.coordinator_rows));
        ok = false;
      }
    }
    if (ok) ++tally->zero_coordinator;
  } else {
    ++tally->clean;
  }

  Result<ShardExecResult> again = exec.Execute(q.sql, opts);
  if (!again.ok() || Canon(again->result.rows) != want) {
    std::fprintf(stderr, "[repl seed=%llu %s] post-fault re-run diverged\n",
                 static_cast<unsigned long long>(seed), q.name);
    ++tally->errors;
    return false;
  }
  if (Verbose)
    std::printf("[repl seed=%llu %s %s] ok (%s)\n",
                static_cast<unsigned long long>(seed), q.name, schedule.c_str(),
                r->nodes_lost ? "replica failover, zero coordinator reads"
                              : "clean");
  return ok;
}

struct ScrubTally {
  int schedules = 0;
  uint64_t injected = 0;
  uint64_t detected = 0;
  uint64_t repaired = 0;
  uint64_t residual = 0;  ///< findings on the verification re-scrub
  int mismatches = 0;
  int errors = 0;
};

/// One seeded bit-rot schedule: rot random pages of 1-3 distinct
/// (table, node, role) copies on a k=2 cluster, then demand one scrub
/// pass finds and repairs every one of them and a second pass is quiet.
bool RunScrubSchedule(uint64_t seed, int which, double scale,
                      ScrubTally* tally) {
  ++tally->schedules;
  Rng rng(seed);
  std::unique_ptr<ShardCluster> cluster =
      MakeTpcdCluster(4, scale, /*replicas=*/2);

  // Pick distinct copies that actually have flushed pages to rot.
  const int want_copies = 1 + which % 3;
  std::set<std::tuple<std::string, int, int>> hit;
  for (int attempt = 0; attempt < 64 &&
                        static_cast<int>(hit.size()) < want_copies;
       ++attempt) {
    const char* table =
        kShardKeys[rng.NextBelow(std::size(kShardKeys))].first;
    const int node = static_cast<int>(rng.NextBelow(4));
    const int role = static_cast<int>(rng.NextBelow(2));  // 0=primary
    const std::string name =
        role == 0 ? std::string(table)
                  : ReplicaManager::ReplicaTableName(table);
    if (hit.count({table, node, role})) continue;
    Result<TableInfo*> info = cluster->node(node)->catalog->Get(name);
    if (!info.ok() || info.value()->heap->flushed_page_count() == 0) continue;
    const size_t page = rng.NextBelow(info.value()->heap->flushed_page_count());
    if (!cluster->node(node)
             ->disk->CorruptPageForTesting(info.value()->heap->page_id(page))
             .ok()) {
      ++tally->errors;
      return false;
    }
    hit.insert({table, node, role});
  }
  if (hit.empty()) {
    ++tally->errors;  // seed never found a page to rot: broken setup
    return false;
  }
  tally->injected += hit.size();

  Scrubber scrubber(cluster.get());
  Result<ScrubSummary> pass = scrubber.ScrubAll();
  if (!pass.ok()) {
    std::fprintf(stderr, "[scrub seed=%llu] pass failed: %s\n",
                 static_cast<unsigned long long>(seed),
                 pass.status().ToString().c_str());
    ++tally->errors;
    return false;
  }
  tally->detected += pass->findings;
  tally->repaired += pass->repaired;
  bool ok = true;
  if (pass->findings != hit.size() || pass->repaired != pass->findings) {
    std::fprintf(stderr,
                 "[scrub seed=%llu] injected=%zu detected=%llu repaired=%llu\n",
                 static_cast<unsigned long long>(seed), hit.size(),
                 static_cast<unsigned long long>(pass->findings),
                 static_cast<unsigned long long>(pass->repaired));
    ok = false;
  }

  Result<ScrubSummary> again = scrubber.ScrubAll();
  if (!again.ok()) {
    ++tally->errors;
    return false;
  }
  tally->residual += again->findings;
  if (again->findings != 0) {
    std::fprintf(stderr, "[scrub seed=%llu] re-scrub still found %llu\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(again->findings));
    ok = false;
  }

  // The repaired cluster must still answer like the oracle.
  ShardedExecutor exec(cluster.get());
  const std::vector<tpcd::TpcdQuery> mix = tpcd::AllQueries();
  const tpcd::TpcdQuery& q = mix[static_cast<size_t>(which) % mix.size()];
  Result<QueryResult> oracle = exec.ExecuteSingleNode(q.sql);
  Result<ShardExecResult> r = exec.Execute(q.sql);
  if (!oracle.ok() || !r.ok()) {
    std::fprintf(stderr, "[scrub seed=%llu %s] post-repair query: %s\n",
                 static_cast<unsigned long long>(seed), q.name,
                 (oracle.ok() ? r.status() : oracle.status())
                     .ToString()
                     .c_str());
    ++tally->errors;
    return false;
  }
  if (Canon(r->result.rows) != Canon(oracle->rows)) {
    std::fprintf(stderr, "[scrub seed=%llu %s] MISMATCH after repair\n",
                 static_cast<unsigned long long>(seed), q.name);
    ++tally->mismatches;
    return false;
  }
  if (Verbose)
    std::printf("[scrub seed=%llu] rotted=%zu detected+repaired, quiet\n",
                static_cast<unsigned long long>(seed), hit.size());
  return ok;
}

struct RepairBench {
  double replicated_ms = 0;   ///< k=2: promote surviving replicas
  double coordinator_ms = 0;  ///< k=1: re-read from the coordinator heap
  uint64_t promoted_rows = 0;
  uint64_t coordinator_rows = 0;
  bool ok = false;
};

/// Time-to-repair one dead node: replica promotion vs the legacy
/// coordinator re-read, identical data and victim.
bool RunRepairBench(double scale, RepairBench* bench) {
  for (int replicas : {1, 2}) {
    std::unique_ptr<ShardCluster> cluster =
        MakeTpcdCluster(4, scale, replicas);
    if (!cluster->MarkDead(2).ok()) return false;
    Result<ShardCluster::RehomeResult> r = cluster->RehomeDeadNode(2);
    if (!r.ok()) {
      std::fprintf(stderr, "repair bench (k=%d) failed: %s\n", replicas,
                   r.status().ToString().c_str());
      return false;
    }
    if (replicas == 1) {
      bench->coordinator_ms = r->sim_ms;
      bench->coordinator_rows = r->coordinator_rows;
      if (r->promoted_rows != 0) return false;  // k=1 has nothing to promote
    } else {
      bench->replicated_ms = r->sim_ms;
      bench->promoted_rows = r->promoted_rows;
      if (r->coordinator_rows != 0) return false;  // replicas must cover
    }
  }
  bench->ok = bench->replicated_ms > 0 && bench->coordinator_ms > 0;
  return bench->ok;
}

}  // namespace
}  // namespace reoptdb

int main(int argc, char** argv) {
  using namespace reoptdb;
  uint64_t seed = 42;
  int schedules = 12;
  double scale = 0.003;
  const char* json_path = nullptr;
  const char* repl_json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--schedules") && i + 1 < argc) {
      schedules = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--json-replication") && i + 1 < argc) {
      repl_json_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--verbose")) {
      Verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: shard_chaos_runner [--seed N] [--schedules N] "
                   "[--scale F] [--json PATH] [--json-replication PATH] "
                   "[--verbose]\n");
      return 2;
    }
  }

  bool ok = true;
  int page_leaks = 0;

  // --- Phase 1: equivalence sweep.
  std::vector<EquivRow> equiv;
  for (int nodes : {2, 4, 8}) {
    std::unique_ptr<ShardCluster> cluster = MakeTpcdCluster(nodes, scale);
    ShardedExecutor exec(cluster.get());
    std::map<std::string, std::vector<std::string>> oracle;
    for (const tpcd::TpcdQuery& q : tpcd::AllQueries()) {
      Result<QueryResult> r = exec.ExecuteSingleNode(q.sql);
      if (!r.ok()) {
        std::fprintf(stderr, "oracle %s failed: %s\n", q.name,
                     r.status().ToString().c_str());
        return 2;
      }
      oracle[q.name] = Canon(r->rows);
    }
    for (size_t batch : {size_t{1}, size_t{1024}}) {
      EquivRow row;
      ok = RunEquivPass(&exec, oracle, nodes, batch, &row) && ok;
      equiv.push_back(row);
    }
    if (nodes == 4) {
      // Leak check: a repeat of the whole mix must leave live pages alone.
      const size_t pages = cluster->LivePagesAliveNodes();
      EquivRow repeat;
      ok = RunEquivPass(&exec, oracle, nodes, 1024, &repeat) && ok;
      if (cluster->LivePagesAliveNodes() != pages) {
        std::fprintf(stderr, "[equiv n=4] PAGE LEAK: %zu -> %zu\n", pages,
                     cluster->LivePagesAliveNodes());
        ++page_leaks;
        ok = false;
      }
    }
  }
  for (const EquivRow& r : equiv)
    std::printf(
        "equiv nodes=%d batch=%zu matched=%d/%d fallbacks=%d switches=%d "
        "cluster_ms=%.2f\n",
        r.nodes, r.batch, r.matched, r.queries, r.fallbacks, r.switches,
        r.cluster_ms);

  // --- Phase 2: crash schedules.
  CrashTally tally;
  for (int t = 0; t < schedules; ++t) {
    const uint64_t trial_seed = seed * 1000003ULL + static_cast<uint64_t>(t);
    ok = RunCrashSchedule(trial_seed, t, scale, &tally) && ok;
  }
  std::printf(
      "crash schedules=%d node_losses=%d absorbed=%d clean=%d mismatches=%d "
      "errors=%d\n",
      tally.schedules, tally.node_losses, tally.absorbed, tally.clean,
      tally.mismatches, tally.errors);

  // --- Phase 3: skew bench.
  SkewBench bench;
  if (!RunSkewArm(/*reopt_enabled=*/false, &bench) ||
      !RunSkewArm(/*reopt_enabled=*/true, &bench)) {
    std::fprintf(stderr, "skew bench arm failed or mismatched\n");
    ok = false;
  } else {
    if (bench.switches < 1) {
      std::fprintf(stderr, "skew bench: no distribution switch fired\n");
      ok = false;
    }
    if (bench.defended_ms >= bench.control_ms) {
      std::fprintf(stderr, "skew bench: defense did not pay off\n");
      ok = false;
    }
  }
  std::printf(
      "skew-bench control_ms=%.2f defended_ms=%.2f speedup=%.2fx switches=%d "
      "skews=%zu\n",
      bench.control_ms, bench.defended_ms,
      bench.defended_ms > 0 ? bench.control_ms / bench.defended_ms : 0,
      bench.switches, bench.skews);

  // --- Phase 4: replicated crash sweep.
  ReplTally repl;
  for (int t = 0; t < schedules; ++t) {
    const uint64_t trial_seed = seed * 2000003ULL + static_cast<uint64_t>(t);
    ok = RunReplicatedSchedule(trial_seed, t, scale, &repl) && ok;
  }
  std::printf(
      "replicated schedules=%d node_losses=%d zero_coordinator=%d clean=%d "
      "promoted_rows=%llu coordinator_rows=%llu mismatches=%d errors=%d\n",
      repl.schedules, repl.node_losses, repl.zero_coordinator, repl.clean,
      static_cast<unsigned long long>(repl.promoted_rows),
      static_cast<unsigned long long>(repl.coordinator_rows), repl.mismatches,
      repl.errors);

  // --- Phase 5: scrub sweep.
  ScrubTally scrub;
  for (int t = 0; t < schedules; ++t) {
    const uint64_t trial_seed = seed * 3000017ULL + static_cast<uint64_t>(t);
    ok = RunScrubSchedule(trial_seed, t, scale, &scrub) && ok;
  }
  std::printf(
      "scrub schedules=%d injected=%llu detected=%llu repaired=%llu "
      "residual=%llu mismatches=%d errors=%d\n",
      scrub.schedules, static_cast<unsigned long long>(scrub.injected),
      static_cast<unsigned long long>(scrub.detected),
      static_cast<unsigned long long>(scrub.repaired),
      static_cast<unsigned long long>(scrub.residual), scrub.mismatches,
      scrub.errors);

  // --- Phase 6: repair bench.
  RepairBench repair;
  ok = RunRepairBench(scale, &repair) && ok;
  std::printf(
      "repair-bench replicated_ms=%.3f coordinator_ms=%.3f speedup=%.2fx "
      "promoted_rows=%llu coordinator_rows=%llu\n",
      repair.replicated_ms, repair.coordinator_ms,
      repair.replicated_ms > 0 ? repair.coordinator_ms / repair.replicated_ms
                               : 0,
      static_cast<unsigned long long>(repair.promoted_rows),
      static_cast<unsigned long long>(repair.coordinator_rows));

  if (repl_json_path) {
    std::FILE* f = std::fopen(repl_json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", repl_json_path);
      return 2;
    }
    std::fprintf(f,
                 "{\n  \"replicated_schedules\": {\"schedules\": %d, "
                 "\"node_losses\": %d, \"zero_coordinator\": %d, "
                 "\"clean\": %d, \"promoted_rows\": %llu, "
                 "\"coordinator_rows\": %llu, \"mismatches\": %d, "
                 "\"errors\": %d},\n",
                 repl.schedules, repl.node_losses, repl.zero_coordinator,
                 repl.clean, static_cast<unsigned long long>(repl.promoted_rows),
                 static_cast<unsigned long long>(repl.coordinator_rows),
                 repl.mismatches, repl.errors);
    std::fprintf(f,
                 "  \"scrub_sweep\": {\"schedules\": %d, \"injected\": %llu, "
                 "\"detected\": %llu, \"repaired\": %llu, \"residual\": %llu, "
                 "\"mismatches\": %d, \"errors\": %d},\n",
                 scrub.schedules,
                 static_cast<unsigned long long>(scrub.injected),
                 static_cast<unsigned long long>(scrub.detected),
                 static_cast<unsigned long long>(scrub.repaired),
                 static_cast<unsigned long long>(scrub.residual),
                 scrub.mismatches, scrub.errors);
    std::fprintf(f,
                 "  \"repair_bench\": {\"replicated_ms\": %.3f, "
                 "\"coordinator_ms\": %.3f, \"speedup\": %.3f, "
                 "\"promoted_rows\": %llu, \"coordinator_rows\": %llu}\n}\n",
                 repair.replicated_ms, repair.coordinator_ms,
                 repair.replicated_ms > 0
                     ? repair.coordinator_ms / repair.replicated_ms
                     : 0,
                 static_cast<unsigned long long>(repair.promoted_rows),
                 static_cast<unsigned long long>(repair.coordinator_rows));
    std::fclose(f);
  }

  if (json_path) {
    std::FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 2;
    }
    std::fprintf(f, "{\n  \"equivalence\": [");
    for (size_t i = 0; i < equiv.size(); ++i) {
      const EquivRow& r = equiv[i];
      std::fprintf(f,
                   "%s\n    {\"nodes\": %d, \"batch\": %zu, \"queries\": %d, "
                   "\"matched\": %d, \"coordinator_fallbacks\": %d, "
                   "\"distribution_switches\": %d, \"cluster_ms\": %.3f}",
                   i ? "," : "", r.nodes, r.batch, r.queries, r.matched,
                   r.fallbacks, r.switches, r.cluster_ms);
    }
    std::fprintf(f,
                 "\n  ],\n  \"crash_schedules\": {\"schedules\": %d, "
                 "\"node_losses\": %d, \"absorbed\": %d, \"clean\": %d, "
                 "\"mismatches\": %d, \"errors\": %d},\n",
                 tally.schedules, tally.node_losses, tally.absorbed,
                 tally.clean, tally.mismatches, tally.errors);
    std::fprintf(f,
                 "  \"skew_bench\": {\"control_ms\": %.3f, "
                 "\"defended_ms\": %.3f, \"speedup\": %.3f, "
                 "\"distribution_switches\": %d, \"skews_recorded\": %zu},\n",
                 bench.control_ms, bench.defended_ms,
                 bench.defended_ms > 0 ? bench.control_ms / bench.defended_ms
                                       : 0,
                 bench.switches, bench.skews);
    std::fprintf(f, "  \"page_leaks\": %d\n}\n", page_leaks);
    std::fclose(f);
  }

  std::printf(ok ? "shard-chaos: all schedules converged on the oracle\n"
                 : "shard-chaos: FAILURES above\n");
  return ok ? 0 : 1;
}
