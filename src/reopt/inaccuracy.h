// Inaccuracy potentials (paper Section 2.5).
//
// The statistics-collectors insertion algorithm assigns each candidate
// statistic an inaccuracy potential of low / medium / high — the likelihood
// that the optimizer's corresponding estimate is wrong — using the paper's
// propagation rules:
//   - base-table histogram: low for serial-family histograms (MaxDiff),
//     medium for equi-width/equi-depth, high when absent;
//   - unique-value counts: low only on base tables, high at any
//     intermediate point;
//   - significant update activity since ANALYZE bumps everything a level;
//   - selections over a single attribute inherit the input level;
//     multi-attribute selections (possible correlation) bump one level;
//     user-defined predicates are always high;
//   - equi-joins on key attributes inherit max(inputs); non-key equi-joins
//     bump one level; non-equi-joins are high;
//   - aggregates inherit the unique-count potential of the group columns.

#ifndef REOPTDB_REOPT_INACCURACY_H_
#define REOPTDB_REOPT_INACCURACY_H_

#include <string>

#include "catalog/catalog.h"
#include "plan/physical_plan.h"
#include "plan/query_spec.h"

namespace reoptdb {

enum class InaccuracyLevel : uint8_t { kLow = 0, kMedium = 1, kHigh = 2 };

const char* InaccuracyLevelName(InaccuracyLevel level);

/// One level higher (saturating at high).
InaccuracyLevel Bump(InaccuracyLevel level);

InaccuracyLevel MaxLevel(InaccuracyLevel a, InaccuracyLevel b);

/// \brief Computes inaccuracy potentials over an annotated plan.
class InaccuracyAnalyzer {
 public:
  InaccuracyAnalyzer(const Catalog* catalog, const QuerySpec* spec)
      : catalog_(catalog), spec_(spec) {}

  /// Potential of the catalog histogram on a base-table column
  /// ("alias.col"), including the update-activity bump.
  InaccuracyLevel BaseHistogramPotential(const std::string& qualified) const;

  /// Potential of the node's output-cardinality estimate.
  InaccuracyLevel NodePotential(const PlanNode& node) const;

  /// Potential of a histogram on `qualified` at the node's output: the
  /// worse of the column's source potential and the node's own potential.
  InaccuracyLevel HistogramPotential(const PlanNode& node,
                                     const std::string& qualified) const;

  /// Potential of the unique-value count of `qualified` at the node's
  /// output: low only for an unfiltered base-table scan with a known
  /// distinct count; high everywhere else.
  InaccuracyLevel UniquePotential(const PlanNode& node,
                                  const std::string& qualified) const;

 private:
  /// Resolves "alias.col" to the base table and bare column.
  bool ResolveBase(const std::string& qualified, const TableInfo** table,
                   std::string* column) const;

  const Catalog* catalog_;
  const QuerySpec* spec_;
};

}  // namespace reoptdb

#endif  // REOPTDB_REOPT_INACCURACY_H_
