#include "optimizer/remainder_sql.h"

#include <map>

namespace reoptdb {

std::string TempColumnName(const std::string& alias, const std::string& col) {
  return alias + "__" + col;
}

Schema TempTableSchema(const std::string& temp_name,
                       const Schema& intermediate_schema) {
  std::vector<Column> cols;
  for (const Column& c : intermediate_schema.columns()) {
    Column out = c;
    out.name = TempColumnName(c.qualifier, c.name);
    out.qualifier = temp_name;
    cols.push_back(std::move(out));
  }
  return Schema(std::move(cols));
}

Result<QuerySpec> BuildRemainderSpec(const QuerySpec& original,
                                     const std::set<int>& covered,
                                     const std::string& temp_name) {
  if (covered.empty())
    return Status::InvalidArgument("remainder: empty covered set");

  QuerySpec out;
  out.limit = original.limit;

  // Relation 0 is the temp table; remaining relations keep their order.
  out.relations.push_back(RelationRef{temp_name, temp_name});
  std::map<int, int> remap;  // old rel idx -> new rel idx (uncovered only)
  for (int r = 0; r < static_cast<int>(original.relations.size()); ++r) {
    if (covered.count(r)) continue;
    remap[r] = static_cast<int>(out.relations.size());
    out.relations.push_back(original.relations[r]);
  }

  auto remap_col = [&](const ColumnId& c) -> ColumnId {
    ColumnId nc;
    nc.type = c.type;
    if (covered.count(c.rel)) {
      nc.rel = 0;
      nc.column = TempColumnName(original.relations[c.rel].alias, c.column);
    } else {
      nc.rel = remap.at(c.rel);
      nc.column = c.column;
    }
    return nc;
  };

  // Filters on covered relations were applied inside the completed subtree.
  for (const FilterPred& f : original.filters) {
    if (covered.count(f.rel)) continue;
    FilterPred nf = f;
    nf.rel = remap.at(f.rel);
    out.filters.push_back(std::move(nf));
  }

  for (const JoinPred& j : original.joins) {
    bool lc = covered.count(j.left_rel) > 0;
    bool rc = covered.count(j.right_rel) > 0;
    if (lc && rc) continue;  // applied inside the subtree
    ColumnId l = remap_col(ColumnId{j.left_rel, j.left_col});
    ColumnId r = remap_col(ColumnId{j.right_rel, j.right_col});
    JoinPred nj;
    if (l.rel <= r.rel) {
      nj = JoinPred{l.rel, l.column, r.rel, r.column};
    } else {
      nj = JoinPred{r.rel, r.column, l.rel, l.column};
    }
    out.joins.push_back(std::move(nj));
  }

  for (const OutputItem& item : original.items) {
    OutputItem ni = item;
    if (!item.count_star) ni.col = remap_col(item.col);
    out.items.push_back(std::move(ni));
  }
  for (const ColumnId& g : original.group_by)
    out.group_by.push_back(remap_col(g));
  out.order_by = original.order_by;  // indexes into items are unchanged

  return out;
}

}  // namespace reoptdb
