// Database: the library's public entry point.
//
// Owns the storage stack (simulated disk, buffer pool), catalog, cost
// model, optimizer calibration, and configuration, and executes SQL with
// or without Dynamic Re-Optimization.
//
// Quickstart:
//   Database db;
//   db.CreateTable("t", schema);
//   db.Insert("t", tuple);  // or BulkLoad
//   db.Analyze("t");
//   auto result = db.Execute("SELECT a, SUM(b) FROM t GROUP BY a");

#ifndef REOPTDB_ENGINE_DATABASE_H_
#define REOPTDB_ENGINE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/feedback_store.h"
#include "common/fault.h"
#include "optimizer/calibration.h"
#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "optimizer/parametric.h"
#include "optimizer/plan_cache.h"
#include "reopt/controller.h"
#include "reopt/query_journal.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "txn/txn_manager.h"

namespace reoptdb {

class RecoveryManager;

/// Engine configuration.
struct DatabaseOptions {
  /// Buffer pool size in pages. Models the paper's 32MB-per-node pool,
  /// scaled with the dataset.
  size_t buffer_pool_pages = 2048;
  /// Memory (pages) the MemoryManager divides among one query's operators.
  double query_mem_pages = 256;
  CostParams cost_params;
  OptimizerOptions optimizer;
  ReoptOptions reopt;
  /// Calibrate optimizer time on star joins up to this relation count at
  /// first use (paper Section 2.4); 0 disables calibration.
  int calibrate_max_relations = 9;
  /// Cardinality feedback loop (catalog/feedback_store.h): observed
  /// collector statistics outlive the query and correct future estimates.
  /// Opt-in: with it off, repeated identical queries make bit-identical
  /// re-optimization decisions, which the equivalence tests assert.
  bool enable_feedback = false;
  FeedbackStoreOptions feedback;
  /// Plan-correction cache (optimizer/plan_cache.h): repeats of a query
  /// whose plan was corrected mid-run start on the corrected plan and skip
  /// optimization. Opt-in for the same determinism reason.
  bool enable_plan_cache = false;
  PlanCacheOptions plan_cache;
};

/// A compiled query with one plan per anticipated memory budget — the
/// paper's Section 4 parametric/dynamic hybrid. Built once by Prepare(),
/// executed many times by ExecutePrepared() under whatever memory is
/// actually available.
struct PreparedQuery {
  QuerySpec spec;
  ParametricPlanSet plans;
};

/// Result of one statement.
struct QueryResult {
  Schema schema;
  std::vector<Tuple> rows;
  ExecutionReport report;
  /// For DDL/DML/EXPLAIN: a human-readable summary (row counts, plan text).
  std::string message;
};

/// \brief A single-node database instance.
class Database {
 public:
  explicit Database(DatabaseOptions opts = DatabaseOptions{});

  // --- DDL / loading.

  /// Creates a table; unqualified column names are qualified with `name`.
  Status CreateTable(const std::string& name, Schema schema);
  /// Appends one row.
  Status Insert(const std::string& table, Tuple row);
  /// Appends many rows and flushes the tail page.
  Status BulkLoad(const std::string& table, const std::vector<Tuple>& rows);
  /// Builds a B+-tree index on an INT column.
  Status CreateIndex(const std::string& table, const std::string& column);
  /// Declares a unique-key column (used by the key-join inaccuracy rule).
  Status DeclareKey(const std::string& table, const std::string& column);
  /// Recomputes catalog statistics.
  Status Analyze(const std::string& table,
                 const AnalyzeOptions& opts = AnalyzeOptions{});
  /// Marks a fraction of the table as updated since ANALYZE.
  Status BumpUpdateActivity(const std::string& table, double fraction);

  // --- Queries.

  /// Parses, binds, optimizes and executes with the configured ReoptOptions.
  Result<QueryResult> Execute(const std::string& sql);

  /// Executes any statement: SELECT, CREATE TABLE, CREATE INDEX,
  /// INSERT/UPDATE/DELETE, BEGIN/COMMIT/ROLLBACK, ANALYZE, or EXPLAIN
  /// [ANALYZE]. DDL/DML return an empty row set plus a message; EXPLAIN
  /// ANALYZE executes the query and renders the plan with the structured
  /// trace summary (report.trace carries the typed records). DML outside an
  /// explicit transaction autocommits; inside one (see BeginTxn, or a
  /// session opened with the BEGIN statement via ExecuteSqlInTxn) changes
  /// stay invisible until COMMIT.
  Result<QueryResult> ExecuteSql(const std::string& sql);

  /// ExecuteSql with an ambient transaction (0 = none). DML statements run
  /// under `*session_txn` when it is non-zero; BEGIN/COMMIT/ROLLBACK update
  /// it. This is the shell's and chaos driver's session protocol.
  Result<QueryResult> ExecuteSqlInTxn(const std::string& sql,
                                      uint64_t* session_txn);

  // --- Transactions (crash-atomic DML; see txn/txn_manager.h).

  /// Starts an explicit transaction.
  Result<uint64_t> BeginTxn() { return txn_.Begin(); }
  /// Commits; `client_tag` (optional) makes the commit idempotently
  /// re-checkable across crashes via TransactionManager::HasCommitted.
  Status CommitTxn(uint64_t txn_id, const std::string& client_tag = "") {
    return txn_.Commit(txn_id, client_tag);
  }
  Status AbortTxn(uint64_t txn_id) { return txn_.Abort(txn_id); }

  /// Runs one parsed DML statement under `txn_id`. Retries lock waits
  /// internally, charging simulated wait time against
  /// options().reopt.deadline_ms (0 = wait forever); on timeout the
  /// transaction aborts and kCancelled comes back.
  Result<uint64_t> ExecuteDml(uint64_t txn_id, const Statement& stmt);

  /// Captures a storage restore point for every base table and truncates
  /// the WAL. Requires no active transactions.
  Status Checkpoint() { return txn_.Checkpoint(); }

  /// Restores checkpointed tables and replays committed WAL transactions
  /// after a simulated crash (clears the injector's crash latch first).
  /// Committed writes survive; uncommitted ones vanish.
  Status RecoverStorage();

  TransactionManager* txn_manager() { return &txn_; }

  /// Same, overriding the re-optimization configuration for this query.
  Result<QueryResult> ExecuteWith(const std::string& sql,
                                  const ReoptOptions& reopt);

  /// Simulated restart after an injected crash (Status kCrashed): clears
  /// the injector's crash latch, then resumes `sql` from its latest
  /// journaled re-optimization stage — validating and rebinding the
  /// journaled temp tables — or re-runs it from scratch when nothing
  /// usable survives. Results are bit-identical to an uncrashed run; the
  /// report's trace carries the RecoveryEvent / RecoveryFallback records.
  Result<QueryResult> Recover(const std::string& sql,
                              const ReoptOptions& reopt);
  Result<QueryResult> Recover(const std::string& sql) {
    return Recover(sql, opts_.reopt);
  }

  /// The optimizer's annotated plan, pretty-printed.
  Result<std::string> Explain(const std::string& sql);

  // --- Parametric plans (the paper's Section 4 hybrid).

  /// Compiles `sql` once per anticipated memory budget. An empty candidate
  /// list defaults to {1/4x, 1x, 4x} of the configured query memory.
  Result<PreparedQuery> Prepare(const std::string& sql,
                                std::vector<double> memory_candidates = {});

  /// Executes the branch nearest `actual_mem_pages`, under that budget,
  /// with Dynamic Re-Optimization covering whatever the anticipation
  /// missed (`reopt.mode = kOff` isolates the pure parametric behaviour).
  Result<QueryResult> ExecutePrepared(const PreparedQuery& prepared,
                                      double actual_mem_pages,
                                      const ReoptOptions& reopt);

  // --- Introspection.

  Catalog* catalog() { return &catalog_; }
  const CostModel& cost_model() const { return cost_; }
  DiskManager* disk() { return &disk_; }
  BufferPool* buffer_pool() { return &pool_; }
  const DatabaseOptions& options() const { return opts_; }
  const OptimizerCalibration& calibration();

  /// Fault-injection registry shared by this instance's storage, memory,
  /// and re-optimization layers. Armed at construction from the
  /// REOPTDB_FAULTS environment variable (see common/fault.h for the
  /// grammar), programmatically via Arm()/Configure(), or from the shell's
  /// \faults meta command.
  FaultInjector* faults() { return &faults_; }

  /// The durable query journal (see reopt/query_journal.h): one per
  /// instance, written at every committed plan switch, read by Recover().
  QueryJournal* journal() { return &journal_; }

  /// Installs a monotonically increasing scrub-findings counter (owned by
  /// a ShardCluster's anti-entropy scrubber; see shard/scrubber.h). When
  /// the counter advances while a query is in flight, the reoptimizer's
  /// Eq.(2) gate revalidates the journaled temp checksums before any
  /// decision trusts materialized results. Null (the default) disables the
  /// recheck — single-node instances have no scrubber.
  void SetScrubSignal(const uint64_t* counter) { scrub_signal_ = counter; }
  const uint64_t* scrub_signal() const { return scrub_signal_; }

  /// The cardinality feedback store (always constructed; consulted and
  /// harvested only while feedback_enabled()). Exposed for persistence
  /// (Export/ImportManifest), the shell's \feedback command, and tests.
  CardinalityFeedbackStore* feedback_store() { return &feedback_store_; }
  bool feedback_enabled() const { return feedback_enabled_; }
  void set_feedback_enabled(bool on) { feedback_enabled_ = on; }

  /// The plan-correction cache (consulted and installed-into only while
  /// plan_cache_enabled()).
  PlanCorrectionCache* plan_cache() { return &plan_cache_; }
  bool plan_cache_enabled() const { return plan_cache_enabled_; }
  void set_plan_cache_enabled(bool on) { plan_cache_enabled_ = on; }

 private:
  friend class RecoveryManager;
  friend class WorkloadManager;

  /// ExecuteWith plus a journal root override: a recovered remainder
  /// executes under its original query's root so re-crashes chain onto
  /// the same journal records.
  Result<QueryResult> ExecuteWithRoot(const std::string& sql,
                                      const ReoptOptions& reopt,
                                      const std::string& journal_root);

  /// Freezes each base table's (row count, commit epoch) in `ctx` so the
  /// query's scans read the state as of its start, regardless of
  /// concurrent transactional DML.
  void CaptureScanSnapshots(ExecContext* ctx) const;

  DatabaseOptions opts_;
  FaultInjector faults_;
  DiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  TransactionManager txn_;
  CostModel cost_;
  OptimizerCalibration calibration_;
  QueryJournal journal_;
  CardinalityFeedbackStore feedback_store_;
  PlanCorrectionCache plan_cache_;
  const uint64_t* scrub_signal_ = nullptr;  ///< not owned; may be null
  bool feedback_enabled_ = false;
  bool plan_cache_enabled_ = false;
  bool calibrated_ = false;
  uint64_t query_counter_ = 0;
};

}  // namespace reoptdb

#endif  // REOPTDB_ENGINE_DATABASE_H_
