#include "storage/disk_manager.h"

#include <string>

namespace reoptdb {

PageId DiskManager::AllocatePage() {
  PageId id = next_id_++;
  auto page = std::make_unique<Page>();
  page->Zero();
  pages_.emplace(id, std::move(page));
  ++stats_.pages_allocated;
  return id;
}

Status DiskManager::FreePage(PageId id) {
  auto it = pages_.find(id);
  if (it == pages_.end())
    return Status::IoError("free of unknown page " + std::to_string(id));
  pages_.erase(it);
  ++stats_.pages_freed;
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, Page* out) {
  auto it = pages_.find(id);
  if (it == pages_.end())
    return Status::IoError("read of unknown page " + std::to_string(id));
  *out = *it->second;
  ++stats_.page_reads;
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const Page& page) {
  auto it = pages_.find(id);
  if (it == pages_.end())
    return Status::IoError("write of unknown page " + std::to_string(id));
  *it->second = page;
  ++stats_.page_writes;
  return Status::OK();
}

}  // namespace reoptdb
