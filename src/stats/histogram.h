// Histograms for selectivity estimation ([19] Poosala & Ioannidis family).
//
// Three kinds are supported, mirroring the paper's inaccuracy-potential
// rules: equi-width and equi-depth ("medium" accuracy) and MaxDiff, the
// serial-family histogram Paradise used ("low" inaccuracy potential).

#ifndef REOPTDB_STATS_HISTOGRAM_H_
#define REOPTDB_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace reoptdb {

enum class HistogramKind : uint8_t {
  kNone = 0,
  kEquiWidth = 1,
  kEquiDepth = 2,
  kMaxDiff = 3,
};

const char* HistogramKindName(HistogramKind k);

/// \brief One histogram bucket over a numeric domain.
///
/// Covers [lo, hi] (hi inclusive); `count` tuples with `distinct` distinct
/// values assumed uniformly spread within the bucket.
struct HistogramBucket {
  double lo = 0;
  double hi = 0;
  double count = 0;
  double distinct = 1;
};

/// \brief Numeric histogram with estimation primitives.
///
/// When built from a reservoir sample, counts are scaled to the full
/// population size, matching how Paradise builds run-time histograms [19,24].
class Histogram {
 public:
  Histogram() = default;

  /// Builds a histogram of `kind` with (up to) `num_buckets` buckets from
  /// `values` (need not be sorted; a sorted copy is made). `population`
  /// scales counts when `values` is a sample; pass values.size() when exact.
  static Histogram Build(HistogramKind kind, std::vector<double> values,
                         int num_buckets, double population);

  HistogramKind kind() const { return kind_; }
  bool empty() const { return buckets_.empty(); }
  const std::vector<HistogramBucket>& buckets() const { return buckets_; }
  double total_count() const { return total_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Estimated number of tuples with value < v (or <= v).
  double EstimateLess(double v, bool inclusive) const;

  /// Estimated number of tuples with value == v.
  double EstimateEqual(double v) const;

  /// Estimated tuples in [lo, hi] with optional strict bounds.
  double EstimateRange(double lo, bool lo_strict, double hi,
                       bool hi_strict) const;

  /// Estimated number of distinct values in the whole histogram.
  double EstimateDistinct() const;

  /// Estimated distinct values within [lo, hi].
  double EstimateDistinctInRange(double lo, double hi) const;

  std::string ToString() const;

  /// Estimated equi-join result size between two histogrammed columns:
  /// sum over overlapping bucket regions of |L||R| / max(d_L, d_R), the
  /// containment assumption applied per region. Detects disjoint domains
  /// (returns ~0) that the classic 1/max(V) formula cannot see.
  static double EstimateEquiJoinCard(const Histogram& left,
                                     const Histogram& right);

 private:
  HistogramKind kind_ = HistogramKind::kNone;
  std::vector<HistogramBucket> buckets_;
  double total_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace reoptdb

#endif  // REOPTDB_STATS_HISTOGRAM_H_
