// Execution-engine correctness: operators against reference answers, spill
// behaviour under tight memory, and cost accounting invariants.

#include <map>

#include "gtest/gtest.h"
#include "test_util.h"

namespace reoptdb {
namespace {

using testing_util::Canon;
using testing_util::LoadEmpDept;

ReoptOptions Off() {
  ReoptOptions o;
  o.mode = ReoptMode::kOff;
  return o;
}

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() { LoadEmpDept(&db_, 500, 10); }
  Database db_;
};

TEST_F(ExecTest, FullScan) {
  Result<QueryResult> r = db_.ExecuteWith("SELECT emp_id FROM emp", Off());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rows.size(), 500u);
}

TEST_F(ExecTest, FilterPredicates) {
  // emp_id in [100, 199]: 100 rows.
  Result<QueryResult> r = db_.ExecuteWith(
      "SELECT emp_id FROM emp WHERE emp_id >= 100 AND emp_id < 200", Off());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 100u);
  for (const Tuple& t : r.value().rows) {
    EXPECT_GE(t.at(0).AsInt(), 100);
    EXPECT_LT(t.at(0).AsInt(), 200);
  }
}

TEST_F(ExecTest, StringEqualityAndNe) {
  Result<QueryResult> eq = db_.ExecuteWith(
      "SELECT emp_id FROM emp WHERE name = 'emp7'", Off());
  ASSERT_TRUE(eq.ok());
  ASSERT_EQ(eq.value().rows.size(), 1u);
  EXPECT_EQ(eq.value().rows[0].at(0).AsInt(), 7);

  Result<QueryResult> ne = db_.ExecuteWith(
      "SELECT emp_id FROM emp WHERE name <> 'emp7'", Off());
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne.value().rows.size(), 499u);
}

TEST_F(ExecTest, ColumnVsColumnFilter) {
  // salary = 1000 + emp_id*10 -> emp_id*1.0 < dept_id only for emp_id < ...
  Result<QueryResult> r = db_.ExecuteWith(
      "SELECT emp_id FROM emp WHERE emp_id < dept_id", Off());
  ASSERT_TRUE(r.ok());
  // dept_id = emp_id % 10, so emp_id < dept_id only for emp_id in 0..9
  // where emp_id < emp_id%10 never holds... verify against brute force:
  int expected = 0;
  for (int i = 0; i < 500; ++i)
    if (i < i % 10) ++expected;
  EXPECT_EQ(r.value().rows.size(), static_cast<size_t>(expected));
}

TEST_F(ExecTest, JoinMatchesReference) {
  Result<QueryResult> r = db_.ExecuteWith(
      "SELECT emp_id, dept_name FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id AND emp_id < 30",
      Off());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 30u);
  std::vector<std::string> got = Canon(r.value().rows);
  std::vector<Tuple> expected;
  for (int i = 0; i < 30; ++i)
    expected.push_back(
        Tuple({Value(int64_t{i}), Value("dept" + std::to_string(i % 10))}));
  EXPECT_EQ(got, Canon(expected));
}

TEST_F(ExecTest, ThreeWayJoin) {
  // emp x dept x dept(region) is not available; self-join dept instead.
  Result<QueryResult> r = db_.ExecuteWith(
      "SELECT e.emp_id FROM emp e, dept d1, dept d2 "
      "WHERE e.dept_id = d1.dept_id AND d1.region_id = d2.region_id AND "
      "e.emp_id < 10",
      Off());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Each dept joins every dept sharing its region (10 depts, 3 regions:
  // region 0 {0,3,6,9}=4, region1 {1,4,7}=3, region2 {2,5,8}=3).
  size_t expected = 0;
  auto region_size = [](int d) {
    int region = d % 3;
    return region == 0 ? 4 : 3;
  };
  for (int i = 0; i < 10; ++i) expected += region_size(i % 10);
  EXPECT_EQ(r.value().rows.size(), expected);
}

TEST_F(ExecTest, GlobalAggregates) {
  Result<QueryResult> r = db_.ExecuteWith(
      "SELECT COUNT(*), SUM(salary), AVG(salary), MIN(salary), MAX(salary) "
      "FROM emp",
      Off());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 1u);
  const Tuple& t = r.value().rows[0];
  double sum = 0;
  for (int i = 0; i < 500; ++i) sum += 1000.0 + i * 10;
  EXPECT_EQ(t.at(0).AsInt(), 500);
  EXPECT_NEAR(t.at(1).AsDouble(), sum, 1e-6);
  EXPECT_NEAR(t.at(2).AsDouble(), sum / 500, 1e-6);
  EXPECT_NEAR(t.at(3).AsDouble(), 1000.0, 1e-9);
  EXPECT_NEAR(t.at(4).AsDouble(), 1000.0 + 499 * 10, 1e-9);
}

TEST_F(ExecTest, GroupByAggregate) {
  Result<QueryResult> r = db_.ExecuteWith(
      "SELECT emp.dept_id, COUNT(*) AS cnt FROM emp GROUP BY emp.dept_id",
      Off());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 10u);
  for (const Tuple& t : r.value().rows) EXPECT_EQ(t.at(1).AsInt(), 50);
}

TEST_F(ExecTest, GroupByEmptyInputYieldsNoGroups) {
  Result<QueryResult> r = db_.ExecuteWith(
      "SELECT emp.dept_id, COUNT(*) FROM emp WHERE emp_id < 0 "
      "GROUP BY emp.dept_id",
      Off());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().rows.empty());
}

TEST_F(ExecTest, GlobalAggregateOnEmptyInputYieldsZeroRow) {
  Result<QueryResult> r = db_.ExecuteWith(
      "SELECT COUNT(*) FROM emp WHERE emp_id < 0", Off());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0].at(0).AsInt(), 0);
}

TEST_F(ExecTest, OrderByAndLimit) {
  Result<QueryResult> r = db_.ExecuteWith(
      "SELECT emp_id, salary FROM emp WHERE emp_id < 100 "
      "ORDER BY salary DESC LIMIT 5",
      Off());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 5u);
  for (size_t i = 0; i < 5; ++i)
    EXPECT_EQ(r.value().rows[i].at(0).AsInt(), 99 - static_cast<int64_t>(i));
}

TEST_F(ExecTest, OrderByAscendingTies) {
  Result<QueryResult> r = db_.ExecuteWith(
      "SELECT emp.dept_id FROM emp WHERE emp_id < 50 ORDER BY dept_id",
      Off());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 50u);
  for (size_t i = 1; i < 50; ++i)
    EXPECT_LE(r.value().rows[i - 1].at(0).AsInt(),
              r.value().rows[i].at(0).AsInt());
}

// Spill correctness: the same query under generous and tiny memory budgets
// must return identical results, and the tiny run must do more I/O.
TEST(ExecSpillTest, HashJoinSpillIsCorrect) {
  DatabaseOptions big_opts;
  big_opts.query_mem_pages = 512;
  DatabaseOptions small_opts;
  small_opts.query_mem_pages = 8;

  Database big(big_opts), small(small_opts);
  LoadEmpDept(&big, 4000, 40);
  LoadEmpDept(&small, 4000, 40);

  const std::string sql =
      "SELECT emp_id, dept_name FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id";
  Result<QueryResult> rb = big.ExecuteWith(sql, Off());
  Result<QueryResult> rs = small.ExecuteWith(sql, Off());
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rb.value().rows.size(), 4000u);
  EXPECT_EQ(Canon(rb.value().rows), Canon(rs.value().rows));
}

TEST(ExecSpillTest, SelfJoinSpillStress) {
  DatabaseOptions opts;
  opts.query_mem_pages = 6;  // forces Grace partitioning + recursion
  Database db(opts);
  LoadEmpDept(&db, 3000, 30);
  Result<QueryResult> r = db.ExecuteWith(
      "SELECT e1.emp_id FROM emp e1, emp e2 "
      "WHERE e1.emp_id = e2.emp_id",
      Off());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rows.size(), 3000u);
}

TEST(ExecSpillTest, AggregateSpillIsCorrect) {
  DatabaseOptions small_opts;
  small_opts.query_mem_pages = 4;
  Database small(small_opts);
  Database big;
  LoadEmpDept(&small, 5000, 1000);  // 1000 groups
  LoadEmpDept(&big, 5000, 1000);
  const std::string sql =
      "SELECT emp.dept_id, COUNT(*) AS c, SUM(salary) AS s FROM emp "
      "GROUP BY emp.dept_id";
  Result<QueryResult> rs = small.ExecuteWith(sql, Off());
  Result<QueryResult> rb = big.ExecuteWith(sql, Off());
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rs.value().rows.size(), 1000u);
  EXPECT_EQ(Canon(rs.value().rows), Canon(rb.value().rows));
}

TEST(ExecSpillTest, ExternalSortIsCorrect) {
  DatabaseOptions small_opts;
  small_opts.query_mem_pages = 4;
  Database small(small_opts);
  LoadEmpDept(&small, 5000, 10);
  Result<QueryResult> r = small.ExecuteWith(
      "SELECT emp_id FROM emp ORDER BY emp_id DESC", Off());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 5000u);
  for (size_t i = 1; i < r.value().rows.size(); ++i)
    EXPECT_GE(r.value().rows[i - 1].at(0).AsInt(),
              r.value().rows[i].at(0).AsInt());
}

TEST_F(ExecTest, IndexJoinAndHashJoinAgree) {
  ASSERT_TRUE(db_.CreateIndex("dept", "dept_id").ok());
  const std::string sql =
      "SELECT emp_id, dept_name FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id AND emp_id < 100";
  // With the index available the optimizer may pick IndexNLJoin; with a
  // separate db without indexes it must hash join. Results must agree.
  Database no_index;
  LoadEmpDept(&no_index, 500, 10);
  Result<QueryResult> a = db_.ExecuteWith(sql, Off());
  Result<QueryResult> b = no_index.ExecuteWith(sql, Off());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Canon(a.value().rows), Canon(b.value().rows));
}

TEST_F(ExecTest, SimulatedTimeAndIosPositive) {
  Result<QueryResult> r = db_.ExecuteWith("SELECT emp_id FROM emp", Off());
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().report.sim_time_ms, 0);
  EXPECT_GT(r.value().report.page_ios, 0u);
  EXPECT_EQ(r.value().report.output_rows, 500u);
}

TEST_F(ExecTest, DeterministicAcrossRuns) {
  const std::string sql =
      "SELECT emp.dept_id, SUM(salary) AS s FROM emp GROUP BY emp.dept_id";
  Result<QueryResult> a = db_.ExecuteWith(sql, Off());
  Result<QueryResult> b = db_.ExecuteWith(sql, Off());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Canon(a.value().rows), Canon(b.value().rows));
  EXPECT_DOUBLE_EQ(a.value().report.sim_time_ms, b.value().report.sim_time_ms);
  EXPECT_EQ(a.value().report.page_ios, b.value().report.page_ios);
}

TEST_F(ExecTest, MinMaxOnStrings) {
  Result<QueryResult> r = db_.ExecuteWith(
      "SELECT MIN(name), MAX(name) FROM emp WHERE emp_id < 3", Off());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0].at(0).AsString(), "emp0");
  EXPECT_EQ(r.value().rows[0].at(1).AsString(), "emp2");
}

}  // namespace
}  // namespace reoptdb
