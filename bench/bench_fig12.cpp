// Figure 12: Effect of skew.
//
// Repeats the Fig. 10 comparison on Zipfian data (z = 0.3 and z = 0.6 on
// all non-key attributes, as in the paper) and prints execution time
// normalized to normal execution — the paper's y-axis. Paper's shape: the
// relative benefit of re-optimization grows slightly with skew, with some
// exceptions (Q10) where serial histograms get *more* accurate under skew.

#include "bench_common.h"

using namespace reoptdb;
using namespace reoptdb::bench;

int main() {
  BenchConfig base = BenchConfig::FromEnv();
  PrintHeader("Figure 12: normalized re-optimized time under Zipf skew",
              base);

  std::printf("| query | class | z=0 | z=0.3 | z=0.6 |\n");
  std::printf("|---|---|---|---|---|\n");

  // Load one database per skew level.
  std::vector<double> zs = {0.0, 0.3, 0.6};
  std::vector<std::unique_ptr<Database>> dbs;
  for (double z : zs) {
    BenchConfig cfg = base;
    cfg.zipf_z = z;
    dbs.push_back(MakeTpcdDatabase(cfg));
  }

  for (const tpcd::TpcdQuery& q : tpcd::AllQueries()) {
    if (q.cls == tpcd::QueryClass::kSimple) continue;
    std::printf("| %s | %s |", q.name, tpcd::QueryClassName(q.cls));
    for (size_t i = 0; i < zs.size(); ++i) {
      QueryResult normal = MustRun(dbs[i].get(), q.sql, Mode(ReoptMode::kOff));
      QueryResult reopt = MustRun(dbs[i].get(), q.sql, Mode(ReoptMode::kFull));
      double normalized =
          reopt.report.sim_time_ms / normal.report.sim_time_ms;
      std::printf(" %.3f |", normalized);
    }
    std::printf("\n");
  }
  std::printf(
      "\nValues < 1 mean re-optimization won. Expected shape (paper): the "
      "benefit grows slightly with z; occasional reversals where skew makes "
      "serial histograms more accurate.\n");
  return 0;
}
