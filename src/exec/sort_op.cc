#include "exec/sort_op.h"

#include <algorithm>
#include <cmath>

namespace reoptdb {

Status SortOp::OpenImpl() {
  RETURN_IF_ERROR(OpenChildren());
  const Schema& in = child(0)->OutputSchema();
  for (const auto& [name, asc] : node_->sort_keys) {
    ASSIGN_OR_RETURN(size_t i, in.IndexOf(name));
    keys_.emplace_back(i, asc);
  }
  budget_bytes_ =
      std::max(1.0, node_->mem_budget_pages > 0 ? node_->mem_budget_pages : 64) *
      kPageSize;
  open_budget_bytes_ = budget_bytes_;
  return Status::OK();
}

bool SortOp::Less(const Tuple& a, const Tuple& b) const {
  for (const auto& [idx, asc] : keys_) {
    int c = a.at(idx).Compare(b.at(idx));
    if (c != 0) return asc ? c < 0 : c > 0;
  }
  return false;
}

Status SortOp::FlushRun() {
  if (ctx_->faults() != nullptr)
    RETURN_IF_ERROR(ctx_->faults()->Check(faults::kExecSpill));
  SpillEvent ev;
  ev.plan_generation = ctx_->plan_generation();
  ev.node_id = node_->id;
  ev.op = "sort";
  ev.reason = budget_bytes_ < open_budget_bytes_ ? "shrink" : "budget";
  ev.partitions = static_cast<int>(runs_.size()) + 1;  // runs incl. this one
  ev.at_ms = ctx_->SimElapsedMs();
  ctx_->trace()->spills.push_back(std::move(ev));
  std::sort(rows_.begin(), rows_.end(),
            [this](const Tuple& a, const Tuple& b) { return Less(a, b); });
  double n = static_cast<double>(rows_.size());
  ctx_->ChargeCmp(static_cast<uint64_t>(n * std::log2(std::max(2.0, n))));
  auto run = ctx_->MakeTempHeap();
  for (const Tuple& t : rows_) RETURN_IF_ERROR(run->Append(t).status());
  RETURN_IF_ERROR(run->Flush());
  runs_.push_back(std::move(run));
  rows_.clear();
  mem_bytes_ = 0;
  return Status::OK();
}

Status SortOp::BlockingPhaseImpl() {
  if (built_) return Status::OK();
  built_ = true;
  if (node_->mem_budget_pages > 0)
    budget_bytes_ = std::max(1.0, node_->mem_budget_pages) * kPageSize;

  Tuple row;
  uint64_t rows_seen = 0;
  while (true) {
    ASSIGN_OR_RETURN(bool more, child(0)->Next(&row));
    if (!more) break;
    // Adopt mid-flight budget *decreases* (broker revocation): the sort
    // degrades to more, smaller runs instead of overrunning the revoked
    // grant. Increases are ignored — runs already cut stay cut, and the
    // merge cost model keys off run count, not peak memory.
    if ((++rows_seen & 0x1ff) == 0) {
      double latest = std::max(1.0, node_->mem_budget_pages) * kPageSize;
      if (latest < budget_bytes_) budget_bytes_ = latest;
    }
    mem_bytes_ += static_cast<double>(row.SerializedSize()) + 32;
    rows_.push_back(std::move(row));
    if (mem_bytes_ > budget_bytes_) RETURN_IF_ERROR(FlushRun());
  }

  if (runs_.empty()) {
    // Fully in-memory.
    std::sort(rows_.begin(), rows_.end(),
              [this](const Tuple& a, const Tuple& b) { return Less(a, b); });
    double n = static_cast<double>(rows_.size());
    if (n > 0)
      ctx_->ChargeCmp(static_cast<uint64_t>(n * std::log2(std::max(2.0, n))));
    return Status::OK();
  }

  ctx_->AddEvent("sort " + std::to_string(node_->id) + ": external sort with " +
                 std::to_string(runs_.size() + 1) + " runs");
  if (!rows_.empty()) RETURN_IF_ERROR(FlushRun());
  // Open merge sources and seed the loser heap.
  for (auto& run : runs_) {
    MergeSource src{run->Scan(), Tuple(), false};
    ASSIGN_OR_RETURN(src.valid, src.it.Next(&src.current));
    size_t idx = sources_.size();
    sources_.push_back(std::move(src));
    if (sources_[idx].valid) heap_.push_back(idx);
  }
  auto greater = [this](size_t a, size_t b) {
    return Less(sources_[b].current, sources_[a].current);
  };
  std::make_heap(heap_.begin(), heap_.end(), greater);
  merging_ = true;
  return Status::OK();
}

Result<bool> SortOp::NextImpl(Tuple* out) {
  RETURN_IF_ERROR(EnsureBlockingPhase());
  if (!merging_) {
    if (emit_pos_ >= rows_.size()) return false;
    *out = rows_[emit_pos_++];
    ctx_->ChargeTuples(1);
    return true;
  }
  // K-way merge via a binary heap: O(log k) comparisons per row, the
  // assumption the sort cost model makes.
  if (heap_.empty()) return false;
  auto greater = [this](size_t a, size_t b) {
    return Less(sources_[b].current, sources_[a].current);
  };
  std::pop_heap(heap_.begin(), heap_.end(), greater);
  size_t best = heap_.back();
  heap_.pop_back();
  *out = sources_[best].current;
  ASSIGN_OR_RETURN(sources_[best].valid,
                   sources_[best].it.Next(&sources_[best].current));
  if (sources_[best].valid) {
    heap_.push_back(best);
    std::push_heap(heap_.begin(), heap_.end(), greater);
  }
  ctx_->ChargeCmp(1 + static_cast<uint64_t>(
                          std::log2(std::max<size_t>(2, heap_.size() + 1))));
  ctx_->ChargeTuples(1);
  return true;
}

Status SortOp::CloseImpl() {
  rows_.clear();
  sources_.clear();
  runs_.clear();
  return CloseChildren();
}

}  // namespace reoptdb
