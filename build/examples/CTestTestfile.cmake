# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(quickstart_trace_json "/root/repo/build/examples/quickstart" "--trace-json")
set_tests_properties(quickstart_trace_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
