#include "exec/index_nl_join.h"

namespace reoptdb {

Status IndexNLJoinOp::OpenImpl() {
  RETURN_IF_ERROR(OpenChildren());
  ASSIGN_OR_RETURN(const TableInfo* info, ctx_->catalog()->Get(node_->table));
  inner_heap_ = info->heap.get();
  index_ = info->FindIndex(node_->index_column);
  if (index_ == nullptr)
    return Status::Internal("index-nl join: no index on " + node_->table +
                            "." + node_->index_column);
  ASSIGN_OR_RETURN(outer_key_,
                   child(0)->OutputSchema().IndexOf(node_->left_keys[0]));
  ASSIGN_OR_RETURN(residuals_,
                   CompilePreds(node_->filters, node_->output_schema));
  return Status::OK();
}

Result<bool> IndexNLJoinOp::NextImpl(Tuple* out) {
  while (true) {
    while (have_outer_ && match_pos_ < matches_.size()) {
      const Rid& rid = matches_[match_pos_++];
      ASSIGN_OR_RETURN(Tuple inner, inner_heap_->Fetch(rid));
      Tuple joined = Tuple::Concat(outer_row_, inner);
      ctx_->ChargeTuples(1);
      if (!EvalAll(residuals_, joined)) continue;
      *out = std::move(joined);
      return true;
    }
    ASSIGN_OR_RETURN(bool more, child(0)->Next(&outer_row_));
    if (!more) return false;
    have_outer_ = true;
    ctx_->ChargeHash(1);  // models per-probe CPU
    matches_.clear();
    match_pos_ = 0;
    const Value& key = outer_row_.at(outer_key_);
    if (!key.is_int()) return Status::Internal("index-nl join: non-int key");
    RETURN_IF_ERROR(index_->Lookup(key.AsInt(), &matches_));
  }
}

Status IndexNLJoinOp::CloseImpl() { return CloseChildren(); }

}  // namespace reoptdb
