// Design ablations called out in DESIGN.md:
//  1. Plan shape: Paradise-style build-on-left-subtree hash joins (every
//     join boundary is a re-optimization point) vs the modern
//     build-on-smaller-side orientation.
//  2. Catalog histogram kind: serial-family MaxDiff vs equi-width, which
//     shifts the inaccuracy potentials the SCIA works from.

#include "bench_common.h"

using namespace reoptdb;
using namespace reoptdb::bench;

namespace {

struct Config {
  const char* label;
  bool build_on_left;
  HistogramKind kind;
  bool histogram_joins = false;
};

}  // namespace

int main() {
  BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Ablations: plan shape and catalog histogram kind", cfg);

  const Config configs[] = {
      {"build-on-left + MaxDiff (paper)", true, HistogramKind::kMaxDiff},
      {"build-on-smaller + MaxDiff", false, HistogramKind::kMaxDiff},
      {"build-on-left + equi-width", true, HistogramKind::kEquiWidth},
      {"+ histogram-overlap join estimation (post-1998)", true,
       HistogramKind::kMaxDiff, true},
  };

  std::printf("| configuration | query | normal ms | reopt ms | "
              "improvement | switches |\n");
  std::printf("|---|---|---|---|---|---|\n");
  for (const Config& c : configs) {
    BenchConfig bcfg = cfg;
    bcfg.analyze_kind = c.kind;
    DatabaseOptions dopts;
    dopts.buffer_pool_pages = bcfg.buffer_pool_pages;
    dopts.query_mem_pages = bcfg.query_mem_pages;
    dopts.optimizer.build_on_left_subtree = c.build_on_left;
    dopts.optimizer.histogram_join_estimation = c.histogram_joins;
    Database db(dopts);
    tpcd::TpcdOptions gen;
    gen.scale_factor = bcfg.scale_factor;
    gen.zipf_z = bcfg.zipf_z;
    gen.seed = bcfg.seed;
    gen.update_fraction = bcfg.update_fraction;
    gen.analyze_options.histogram_kind = bcfg.analyze_kind;
    Status st = tpcd::Load(&db, gen);
    if (!st.ok()) {
      std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
      return 1;
    }
    for (const char* qname : {"Q5", "Q7"}) {
      const tpcd::TpcdQuery* q = nullptr;
      auto all = tpcd::AllQueries();
      for (const auto& cand : all)
        if (std::string(cand.name) == qname) q = &cand;
      QueryResult normal = MustRun(&db, q->sql, Mode(ReoptMode::kOff));
      QueryResult reopt = MustRun(&db, q->sql, Mode(ReoptMode::kFull));
      std::printf("| %s | %s | %.1f | %.1f | %+.1f%% | %d |\n", c.label,
                  q->name, normal.report.sim_time_ms,
                  reopt.report.sim_time_ms,
                  (1.0 - reopt.report.sim_time_ms /
                             normal.report.sim_time_ms) * 100,
                  reopt.report.plans_switched);
    }
  }
  std::printf("\nThe build-on-left (Paradise) shape exposes more pipeline "
              "breaks, which is where mid-query re-optimization gets its "
              "leverage; build-on-smaller plans hide mis-estimates inside "
              "one long pipeline.\n");
  return 0;
}
