// Full statement grammar: DDL, DML and queries.
//
//   statement := select
//              | CREATE TABLE name '(' col type [PRIMARY KEY] (',' ...)* ')'
//              | CREATE INDEX ON name '(' column ')'
//              | INSERT INTO name VALUES '(' literal, ... ')' (',' '(' ... ')')*
//              | UPDATE name SET col '=' literal (',' ...)* [where]
//              | DELETE FROM name [where]
//              | BEGIN [TRANSACTION] | COMMIT | ROLLBACK
//              | ANALYZE name
//              | DROP TABLE name
//              | EXPLAIN [ANALYZE] select
//   where     := WHERE col cmp literal (AND ...)*
//
// Types: INT | DOUBLE | STRING.

#ifndef REOPTDB_PARSER_STATEMENT_H_
#define REOPTDB_PARSER_STATEMENT_H_

#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "parser/ast.h"
#include "types/schema.h"

namespace reoptdb {

struct CreateTableAst {
  std::string table;
  std::vector<Column> columns;       // unqualified
  std::vector<std::string> keys;     // PRIMARY KEY columns
};

struct CreateIndexAst {
  std::string table;
  std::string column;
};

struct InsertAst {
  std::string table;
  std::vector<std::vector<Value>> rows;
};

struct UpdateAst {
  std::string table;
  /// SET assignments, column name -> new literal value, in statement order.
  std::vector<std::pair<std::string, Value>> sets;
  /// Conjunctive WHERE clause (empty = all rows). Only `col cmp literal`
  /// conjuncts — DML predicates never join.
  std::vector<PredicateAst> where;
};

struct DeleteAst {
  std::string table;
  std::vector<PredicateAst> where;
};

/// BEGIN [TRANSACTION] / COMMIT / ROLLBACK (shell transaction control).
struct BeginTxnAst {};
struct CommitTxnAst {};
struct RollbackTxnAst {};

struct AnalyzeAst {
  std::string table;
};

struct DropTableAst {
  std::string table;
};

struct ExplainAst {
  SelectStmtAst select;
  /// EXPLAIN ANALYZE: execute the query and render the structured trace
  /// (operator spans + reopt decisions) alongside the plan.
  bool analyze = false;
};

/// Any parsed statement.
using Statement = std::variant<SelectStmtAst, CreateTableAst, CreateIndexAst,
                               InsertAst, AnalyzeAst, ExplainAst,
                               DropTableAst, UpdateAst, DeleteAst,
                               BeginTxnAst, CommitTxnAst, RollbackTxnAst>;

/// True for INSERT / UPDATE / DELETE (the statements that go through the
/// transactional write path).
bool IsDmlStatement(const Statement& stmt);

/// Parses one statement of any kind.
Result<Statement> ParseStatement(const std::string& sql);

}  // namespace reoptdb

#endif  // REOPTDB_PARSER_STATEMENT_H_
