#include "storage/buffer_pool.h"

#include <cassert>
#include <string>

namespace reoptdb {

BufferPool::BufferPool(DiskManager* disk, size_t capacity_pages)
    : disk_(disk), frames_(capacity_pages) {
  assert(capacity_pages >= 4 && "buffer pool too small to operate");
  free_frames_.reserve(capacity_pages);
  for (size_t i = 0; i < capacity_pages; ++i)
    free_frames_.push_back(capacity_pages - 1 - i);
}

void BufferPool::TouchLru(size_t frame_idx) {
  auto it = lru_pos_.find(frame_idx);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_back(frame_idx);
  lru_pos_[frame_idx] = std::prev(lru_.end());
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    size_t idx = *it;
    Frame& f = frames_[idx];
    if (f.pin_count > 0) continue;
    // Evict.
    if (f.dirty) {
      RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.page));
      ++stats_.dirty_evictions;
      f.dirty = false;
    }
    table_.erase(f.page_id);
    lru_.erase(it);
    lru_pos_.erase(idx);
    f.page_id = kInvalidPageId;
    return idx;
  }
  return Status::ResourceExhausted("buffer pool: all frames pinned");
}

Result<Page*> BufferPool::FetchPage(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame& f = frames_[it->second];
    ++f.pin_count;
    TouchLru(it->second);
    ++stats_.hits;
    return &f.page;
  }
  ++stats_.misses;
  ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  RETURN_IF_ERROR(disk_->ReadPage(id, &f.page));
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  table_[id] = idx;
  TouchLru(idx);
  return &f.page;
}

Result<std::pair<PageId, Page*>> BufferPool::NewPage() {
  ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  PageId id = disk_->AllocatePage();
  Frame& f = frames_[idx];
  f.page.Zero();
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;
  table_[id] = idx;
  TouchLru(idx);
  return std::make_pair(id, &f.page);
}

Status BufferPool::Unpin(PageId id, bool dirty) {
  auto it = table_.find(id);
  if (it == table_.end())
    return Status::Internal("unpin of non-resident page " + std::to_string(id));
  Frame& f = frames_[it->second];
  if (f.pin_count <= 0)
    return Status::Internal("unpin of unpinned page " + std::to_string(id));
  --f.pin_count;
  f.dirty = f.dirty || dirty;
  return Status::OK();
}

Status BufferPool::FlushPage(PageId id) {
  auto it = table_.find(id);
  if (it == table_.end()) return Status::OK();
  Frame& f = frames_[it->second];
  if (f.dirty) {
    RETURN_IF_ERROR(disk_->WritePage(id, f.page));
    f.dirty = false;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (auto& [id, idx] : table_) {
    Frame& f = frames_[idx];
    if (f.dirty) {
      RETURN_IF_ERROR(disk_->WritePage(id, f.page));
      f.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::DeletePage(PageId id) {
  Discard(id);
  return disk_->FreePage(id);
}

void BufferPool::Discard(PageId id) {
  auto it = table_.find(id);
  if (it == table_.end()) return;
  size_t idx = it->second;
  Frame& f = frames_[idx];
  assert(f.pin_count == 0 && "discard of pinned page");
  table_.erase(it);
  auto pos = lru_pos_.find(idx);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
    lru_pos_.erase(pos);
  }
  f.page_id = kInvalidPageId;
  f.dirty = false;
  free_frames_.push_back(idx);
}

Result<PageGuard> PageGuard::Fetch(BufferPool* pool, PageId id) {
  ASSIGN_OR_RETURN(Page * page, pool->FetchPage(id));
  return PageGuard(pool, id, page);
}

}  // namespace reoptdb
