// Quickstart: create a database, load a small TPC-D instance, and run a
// query with and without Dynamic Re-Optimization.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "engine/database.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

using namespace reoptdb;

namespace {

void PrintReport(const char* label, const QueryResult& r) {
  std::printf("%-14s time=%9.1f ms  io=%7llu pages  rows=%llu"
              "  collectors=%d  mem_reallocs=%d  reopts=%d  switches=%d\n",
              label, r.report.sim_time_ms,
              static_cast<unsigned long long>(r.report.page_ios),
              static_cast<unsigned long long>(r.report.output_rows),
              r.report.collectors_inserted, r.report.memory_reallocations,
              r.report.reopts_considered, r.report.plans_switched);
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  DatabaseOptions opts;
  opts.buffer_pool_pages = 512;
  opts.query_mem_pages = 96;
  Database db(opts);

  std::printf("Loading TPC-D (scale 0.005, uniform)...\n");
  tpcd::TpcdOptions gen;
  gen.scale_factor = 0.005;
  Status st = tpcd::Load(&db, gen);
  if (!st.ok()) return Fail(st);

  const std::string sql = tpcd::Q5Sql();
  std::printf("\nQuery (TPC-D Q5):\n  %s\n\n", sql.c_str());

  Result<std::string> plan = db.Explain(sql);
  if (!plan.ok()) return Fail(plan.status());
  std::printf("Optimizer plan (annotated):\n%s\n", plan->c_str());

  ReoptOptions off;
  off.mode = ReoptMode::kOff;
  Result<QueryResult> normal = db.ExecuteWith(sql, off);
  if (!normal.ok()) return Fail(normal.status());
  PrintReport("normal:", *normal);

  ReoptOptions full;  // paper defaults: mu=0.05, theta1=0.05, theta2=0.2
  Result<QueryResult> reopt = db.ExecuteWith(sql, full);
  if (!reopt.ok()) return Fail(reopt.status());
  PrintReport("re-optimized:", *reopt);

  for (const std::string& e : reopt->report.events)
    std::printf("  event: %s\n", e.c_str());

  std::printf("\nFirst rows:\n");
  size_t n = std::min<size_t>(5, reopt->rows.size());
  for (size_t i = 0; i < n; ++i)
    std::printf("  %s\n", reopt->rows[i].ToString().c_str());

  double speedup = normal->report.sim_time_ms /
                   std::max(1e-9, reopt->report.sim_time_ms);
  std::printf("\nspeedup (normal / re-optimized): %.2fx\n", speedup);
  return 0;
}
