// Shared harness for the paper-reproduction benchmarks.
//
// Every experiment binary prints a markdown table with the same rows/series
// as the corresponding figure in the paper (execution time normal vs
// re-optimized, per query class). "Time" is the engine's deterministic
// simulated time (DESIGN.md §3), so runs are exactly reproducible.

#ifndef REOPTDB_BENCH_BENCH_COMMON_H_
#define REOPTDB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "engine/database.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace bench {

/// Paper-proportional engine configuration.
///
/// The paper ran TPC-D SF 3 (3 GB) with a 32 MB buffer pool per node
/// (~1% of the data) and deliberately scarce memory. We scale everything
/// by the same ratios: at the default SF 0.02 the database is ~25 MB, the
/// buffer pool ~0.5 MB (64 pages) and query memory ~1.5 MB (192 pages).
struct BenchConfig {
  double scale_factor = 0.02;
  double zipf_z = 0.0;
  uint64_t seed = 42;
  size_t buffer_pool_pages = 64;
  double query_mem_pages = 192;
  HistogramKind analyze_kind = HistogramKind::kMaxDiff;
  /// Fraction of extra orders inserted after ANALYZE (stale catalog; the
  /// paper's footnote-2 error source). Concentrated in a hot date window.
  double update_fraction = 1.0;

  static BenchConfig FromEnv() {
    BenchConfig c;
    if (const char* sf = std::getenv("REOPTDB_BENCH_SF")) c.scale_factor = atof(sf);
    if (const char* mem = std::getenv("REOPTDB_BENCH_MEM"))
      c.query_mem_pages = atof(mem);
    return c;
  }
};

inline std::unique_ptr<Database> MakeTpcdDatabase(const BenchConfig& cfg) {
  DatabaseOptions opts;
  opts.buffer_pool_pages = cfg.buffer_pool_pages;
  opts.query_mem_pages = cfg.query_mem_pages;
  auto db = std::make_unique<Database>(opts);
  tpcd::TpcdOptions gen;
  gen.scale_factor = cfg.scale_factor;
  gen.zipf_z = cfg.zipf_z;
  gen.seed = cfg.seed;
  gen.analyze_options.histogram_kind = cfg.analyze_kind;
  gen.update_fraction = cfg.update_fraction;
  Status st = tpcd::Load(db.get(), gen);
  if (!st.ok()) {
    std::fprintf(stderr, "tpcd load failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return db;
}

inline ReoptOptions Mode(ReoptMode mode) {
  ReoptOptions o;  // paper defaults: mu=0.05, theta1=0.05, theta2=0.2
  o.mode = mode;
  return o;
}

/// Runs a query under a mode; aborts on error (benchmarks must not
/// silently skip experiments). When REOPTDB_BENCH_TRACE is set, emits one
/// compact trace-summary JSON line per run to stderr (machine-readable
/// per-run trajectories alongside the markdown tables).
inline QueryResult MustRun(Database* db, const std::string& sql,
                           const ReoptOptions& opts) {
  Result<QueryResult> r = db->ExecuteWith(sql, opts);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\nsql: %s\n",
                 r.status().ToString().c_str(), sql.c_str());
    std::abort();
  }
  if (std::getenv("REOPTDB_BENCH_TRACE") != nullptr) {
    std::fprintf(stderr, "TRACE %s\n",
                 r->report.trace.CompactSummaryJson().c_str());
  }
  return std::move(r).value();
}

inline void PrintHeader(const char* title, const BenchConfig& cfg) {
  std::printf("\n## %s\n\n", title);
  std::printf("TPC-D scale %.3f, zipf z=%.1f, buffer pool %zu pages, "
              "query memory %.0f pages; times are simulated ms "
              "(deterministic).\n\n",
              cfg.scale_factor, cfg.zipf_z, cfg.buffer_pool_pages,
              cfg.query_mem_pages);
}

}  // namespace bench
}  // namespace reoptdb

#endif  // REOPTDB_BENCH_BENCH_COMMON_H_
