// Generalized Zipfian distribution [27], as used in the paper's skew
// experiments (z = 0.3 and z = 0.6 over all non-key attributes).

#ifndef REOPTDB_STATS_ZIPF_H_
#define REOPTDB_STATS_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace reoptdb {

/// \brief Samples ranks in [0, n) with P(rank i) proportional to 1/(i+1)^z.
///
/// z = 0 degenerates to uniform. Ranks can optionally be scrambled through a
/// fixed pseudo-random permutation so the heavy hitters are not the smallest
/// domain values (Paradise's generator skews frequencies, not positions).
class ZipfDistribution {
 public:
  /// Precomputes the CDF for a domain of `n` values with exponent `z`.
  ZipfDistribution(uint64_t n, double z, bool scramble = false,
                   uint64_t scramble_seed = 0x5eedcafe);

  /// Draws one rank (or scrambled value) in [0, n).
  uint64_t Sample(Rng* rng) const;

  uint64_t domain() const { return n_; }
  double z() const { return z_; }

 private:
  uint64_t n_;
  double z_;
  bool scramble_;
  uint64_t scramble_seed_;
  std::vector<double> cdf_;  // empty when z == 0 (uniform fast path)
};

}  // namespace reoptdb

#endif  // REOPTDB_STATS_ZIPF_H_
