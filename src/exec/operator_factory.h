// Builds an operator tree from a physical plan.

#ifndef REOPTDB_EXEC_OPERATOR_FACTORY_H_
#define REOPTDB_EXEC_OPERATOR_FACTORY_H_

#include <memory>

#include "exec/operator.h"

namespace reoptdb {

/// Recursively instantiates the operator for `node` and its children.
Result<std::unique_ptr<Operator>> BuildOperatorTree(ExecContext* ctx,
                                                    PlanNode* node);

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_OPERATOR_FACTORY_H_
