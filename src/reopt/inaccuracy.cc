#include "reopt/inaccuracy.h"

#include <set>

namespace reoptdb {

namespace {
// Update activity above this fraction counts as "significant" and bumps
// every potential one level.
constexpr double kSignificantUpdateActivity = 0.1;
}  // namespace

const char* InaccuracyLevelName(InaccuracyLevel level) {
  switch (level) {
    case InaccuracyLevel::kLow:
      return "low";
    case InaccuracyLevel::kMedium:
      return "medium";
    case InaccuracyLevel::kHigh:
      return "high";
  }
  return "?";
}

InaccuracyLevel Bump(InaccuracyLevel level) {
  return level == InaccuracyLevel::kHigh
             ? InaccuracyLevel::kHigh
             : static_cast<InaccuracyLevel>(static_cast<uint8_t>(level) + 1);
}

InaccuracyLevel MaxLevel(InaccuracyLevel a, InaccuracyLevel b) {
  return a > b ? a : b;
}

bool InaccuracyAnalyzer::ResolveBase(const std::string& qualified,
                                     const TableInfo** table,
                                     std::string* column) const {
  size_t dot = qualified.find('.');
  if (dot == std::string::npos) return false;
  std::string alias = qualified.substr(0, dot);
  *column = qualified.substr(dot + 1);
  for (const RelationRef& r : spec_->relations) {
    if (r.alias != alias) continue;
    Result<const TableInfo*> info = catalog_->Get(r.table);
    if (!info.ok()) return false;
    *table = info.value();
    return true;
  }
  return false;
}

InaccuracyLevel InaccuracyAnalyzer::BaseHistogramPotential(
    const std::string& qualified) const {
  const TableInfo* table;
  std::string column;
  if (!ResolveBase(qualified, &table, &column)) return InaccuracyLevel::kHigh;

  InaccuracyLevel level = InaccuracyLevel::kHigh;
  const ColumnStats* cs = table->stats.Find(column);
  if (cs != nullptr && cs->has_histogram()) {
    switch (cs->histogram.kind()) {
      case HistogramKind::kMaxDiff:  // serial-family histogram
        level = InaccuracyLevel::kLow;
        break;
      case HistogramKind::kEquiWidth:
      case HistogramKind::kEquiDepth:
        level = InaccuracyLevel::kMedium;
        break;
      default:
        level = InaccuracyLevel::kHigh;
        break;
    }
  }
  if (table->stats.update_activity > kSignificantUpdateActivity)
    level = Bump(level);
  return level;
}

InaccuracyLevel InaccuracyAnalyzer::NodePotential(const PlanNode& node) const {
  switch (node.kind) {
    case OpKind::kSeqScan:
    case OpKind::kIndexScan: {
      if (node.filters.empty()) {
        // Cardinality of a bare scan is exact in the catalog.
        Result<const TableInfo*> info = catalog_->Get(node.table);
        InaccuracyLevel level = InaccuracyLevel::kLow;
        if (info.ok() &&
            info.value()->stats.update_activity > kSignificantUpdateActivity)
          level = Bump(level);
        return level;
      }
      // Selection: inherit from the filtered columns' histograms; bump for
      // multi-attribute predicates (uncaptured correlation) and for
      // column-vs-column predicates.
      std::set<std::string> attrs;
      bool col_col = false;
      InaccuracyLevel level = InaccuracyLevel::kLow;
      for (const ScalarPred& p : node.filters) {
        attrs.insert(p.column);
        if (p.rhs_is_column) {
          attrs.insert(p.rhs_column);
          col_col = true;
        }
        level = MaxLevel(level, BaseHistogramPotential(p.column));
      }
      if (attrs.size() >= 2 || col_col) level = Bump(level);
      return level;
    }
    case OpKind::kHashJoin:
    case OpKind::kIndexNLJoin: {
      InaccuracyLevel level = InaccuracyLevel::kLow;
      for (const auto& c : node.children)
        level = MaxLevel(level, NodePotential(*c));
      // Key equi-joins propagate; non-key equi-joins bump one level.
      bool all_keys = true;
      for (size_t i = 0; i < node.left_keys.size(); ++i) {
        auto is_key = [&](const std::string& qualified) {
          const TableInfo* table;
          std::string column;
          if (!ResolveBase(qualified, &table, &column)) return false;
          return table->key_columns.count(column) > 0;
        };
        if (!is_key(node.left_keys[i]) && !is_key(node.right_keys[i]))
          all_keys = false;
      }
      if (node.kind == OpKind::kIndexNLJoin) {
        // Inner side is a base table scanned through the index.
        const TableInfo* table;
        std::string column;
        if (ResolveBase(node.right_keys[0], &table, &column) &&
            table->stats.update_activity > kSignificantUpdateActivity) {
          level = Bump(level);
        }
      }
      return all_keys ? level : Bump(level);
    }
    case OpKind::kHashAggregate: {
      // Output cardinality = number of groups: the unique-count potential
      // of the group columns in the input.
      InaccuracyLevel level = InaccuracyLevel::kLow;
      for (const std::string& g : node.group_cols)
        level = MaxLevel(level, UniquePotential(*node.children[0], g));
      return level;
    }
    default: {
      InaccuracyLevel level = InaccuracyLevel::kLow;
      for (const auto& c : node.children)
        level = MaxLevel(level, NodePotential(*c));
      return level;
    }
  }
}

InaccuracyLevel InaccuracyAnalyzer::HistogramPotential(
    const PlanNode& node, const std::string& qualified) const {
  return MaxLevel(NodePotential(node), BaseHistogramPotential(qualified));
}

InaccuracyLevel InaccuracyAnalyzer::UniquePotential(
    const PlanNode& node, const std::string& qualified) const {
  // Low only for attributes of an unfiltered base table with a known
  // distinct count; high at every intermediate point (paper rule).
  if ((node.kind == OpKind::kSeqScan || node.kind == OpKind::kIndexScan) &&
      node.filters.empty()) {
    const TableInfo* table;
    std::string column;
    if (ResolveBase(qualified, &table, &column)) {
      const ColumnStats* cs = table->stats.Find(column);
      if (cs != nullptr && cs->distinct > 0) {
        return table->stats.update_activity > kSignificantUpdateActivity
                   ? InaccuracyLevel::kMedium
                   : InaccuracyLevel::kLow;
      }
    }
  }
  return InaccuracyLevel::kHigh;
}

}  // namespace reoptdb
