# Empty dependencies file for optimizer_test.
# This may be replaced when dependencies are built.
