#include "exec/hash_aggregate.h"

#include <algorithm>

#include "common/rng.h"

namespace reoptdb {

namespace {
constexpr double kStateOverheadBytes = 96;
constexpr int kMaxSpillDepth = 6;

uint64_t KeyHash(const std::string& key, int depth) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return SplitMix64(h ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(depth)));
}
}  // namespace

Status HashAggregateOp::OpenImpl() {
  RETURN_IF_ERROR(OpenChildren());
  const Schema& in = child(0)->OutputSchema();
  for (const std::string& g : node_->group_cols) {
    ASSIGN_OR_RETURN(size_t i, in.IndexOf(g));
    group_idx_.push_back(i);
  }
  for (const AggSpec& a : node_->aggs) {
    if (a.count_star) {
      agg_idx_.push_back(SIZE_MAX);
    } else {
      ASSIGN_OR_RETURN(size_t i, in.IndexOf(a.column));
      agg_idx_.push_back(i);
    }
  }
  // Output layout: node->project_cols[i] names the group column feeding
  // output column i, or "" for the next aggregate.
  size_t agg_ordinal = 0;
  for (const std::string& src : node_->project_cols) {
    if (src.empty()) {
      out_cols_.push_back(OutCol{false, agg_ordinal++});
      continue;
    }
    size_t g = 0;
    bool found = false;
    for (size_t i = 0; i < node_->group_cols.size(); ++i) {
      if (node_->group_cols[i] == src) {
        g = i;
        found = true;
        break;
      }
    }
    if (!found)
      return Status::Internal("aggregate output source not in group cols: " +
                              src);
    out_cols_.push_back(OutCol{true, g});
  }
  budget_bytes_ =
      std::max(1.0, node_->mem_budget_pages > 0 ? node_->mem_budget_pages : 64) *
      kPageSize;
  open_budget_bytes_ = budget_bytes_;
  fanout_ = static_cast<size_t>(
      std::clamp(node_->mem_budget_pages - 1, 2.0, 32.0));
  return Status::OK();
}

std::string HashAggregateOp::KeyOf(const std::vector<Value>& gv) const {
  std::string key;
  for (const Value& v : gv) v.SerializeTo(&key);
  return key;
}

void HashAggregateOp::Merge(const std::string& key, GroupState state) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    mem_bytes_ += key.size() + kStateOverheadBytes +
                  node_->aggs.size() * sizeof(OneAgg);
    table_.emplace(key, std::move(state));
    return;
  }
  GroupState& dst = it->second;
  for (size_t i = 0; i < dst.aggs.size(); ++i) {
    OneAgg& d = dst.aggs[i];
    const OneAgg& s = state.aggs[i];
    d.sum += s.sum;
    d.count += s.count;
    if (s.has_minmax) {
      if (!d.has_minmax) {
        d.min = s.min;
        d.max = s.max;
        d.has_minmax = true;
      } else {
        if (s.min < d.min) d.min = s.min;
        if (s.max > d.max) d.max = s.max;
      }
    }
  }
}

Tuple HashAggregateOp::StateToTuple(const GroupState& s) const {
  std::vector<Value> v = s.group_values;
  for (const OneAgg& a : s.aggs) {
    v.push_back(Value(a.sum));
    v.push_back(Value(a.count));
    v.push_back(Value(static_cast<int64_t>(a.has_minmax ? 1 : 0)));
    v.push_back(a.has_minmax ? a.min : Value(int64_t{0}));
    v.push_back(a.has_minmax ? a.max : Value(int64_t{0}));
  }
  return Tuple(std::move(v));
}

Result<HashAggregateOp::GroupState> HashAggregateOp::TupleToState(
    const Tuple& t) const {
  GroupState s;
  const size_t ng = node_->group_cols.size();
  const size_t na = node_->aggs.size();
  if (t.size() != ng + na * 5)
    return Status::Internal("aggregate spill tuple has wrong arity");
  for (size_t i = 0; i < ng; ++i) s.group_values.push_back(t.at(i));
  for (size_t i = 0; i < na; ++i) {
    OneAgg a;
    size_t base = ng + i * 5;
    a.sum = t.at(base).AsDouble();
    a.count = t.at(base + 1).AsInt();
    a.has_minmax = t.at(base + 2).AsInt() != 0;
    a.min = t.at(base + 3);
    a.max = t.at(base + 4);
    s.aggs.push_back(std::move(a));
  }
  return s;
}

Status HashAggregateOp::SpillAll(int depth) {
  if (parts_.empty()) {
    if (ctx_->faults() != nullptr)
      RETURN_IF_ERROR(ctx_->faults()->Check(faults::kExecSpill));
    for (size_t i = 0; i < fanout_; ++i) parts_.push_back(ctx_->MakeTempHeap());
    spilled_ = true;
    spill_depth_ = depth;
    SpillEvent ev;
    ev.plan_generation = ctx_->plan_generation();
    ev.node_id = node_->id;
    ev.op = "aggregate";
    ev.reason = budget_bytes_ < open_budget_bytes_ ? "shrink" : "budget";
    ev.partitions = static_cast<int>(fanout_);
    ev.at_ms = ctx_->SimElapsedMs();
    ctx_->trace()->spills.push_back(std::move(ev));
    ctx_->AddEvent("aggregate " + std::to_string(node_->id) +
                   ": groups exceeded budget, spilling to " +
                   std::to_string(fanout_) + " partitions");
  }
  for (auto& [key, state] : table_) {
    size_t p = KeyHash(key, depth) % fanout_;
    RETURN_IF_ERROR(parts_[p]->Append(StateToTuple(state)).status());
  }
  table_.clear();
  mem_bytes_ = 0;
  return Status::OK();
}

Status HashAggregateOp::BlockingPhaseImpl() {
  if (built_) return Status::OK();
  built_ = true;
  if (node_->mem_budget_pages > 0)
    budget_bytes_ = std::max(1.0, node_->mem_budget_pages) * kPageSize;
  fanout_ = static_cast<size_t>(
      std::clamp(node_->mem_budget_pages - 1, 2.0, 32.0));

  Tuple row;
  uint64_t rows_seen = 0;
  while (true) {
    ASSIGN_OR_RETURN(bool more, child(0)->Next(&row));
    if (!more) break;
    ctx_->ChargeHash(1);
    // Mid-execution memory response (paper Section 2.3 extension): adopt
    // increases — and decreases from a broker revocation, which make the
    // next over-budget merge spill instead of overrunning the grant.
    if ((++rows_seen & 0x1ff) == 0 && !spilled_) {
      budget_bytes_ = std::max(1.0, node_->mem_budget_pages) * kPageSize;
    }
    GroupState s;
    for (size_t i : group_idx_) s.group_values.push_back(row.at(i));
    for (size_t i = 0; i < node_->aggs.size(); ++i) {
      OneAgg a;
      a.count = 1;
      if (agg_idx_[i] != SIZE_MAX) {
        const Value& v = row.at(agg_idx_[i]);
        if (!v.is_string()) a.sum = v.AsNumeric();
        a.min = a.max = v;
        a.has_minmax = true;
      }
      s.aggs.push_back(std::move(a));
    }
    // Compute the key before moving the state (argument evaluation order
    // would otherwise be free to move the group values away first).
    std::string key = KeyOf(s.group_values);
    Merge(key, std::move(s));
    if (mem_bytes_ > budget_bytes_) RETURN_IF_ERROR(SpillAll(1));
  }

  if (spilled_) {
    // Residual in-memory groups join the partitions.
    RETURN_IF_ERROR(SpillAll(spill_depth_));
    for (auto& p : parts_) {
      RETURN_IF_ERROR(p->Flush());
      pending_.push_back(PendingPartition{std::move(p), spill_depth_});
    }
    parts_.clear();
  }
  return Status::OK();
}

Status HashAggregateOp::AbsorbPartition(PendingPartition part) {
  table_.clear();
  mem_bytes_ = 0;
  HeapFile::Iterator it = part.file->Scan();
  Tuple t;
  bool overflow = false;
  std::vector<std::unique_ptr<HeapFile>> subs;
  int depth = part.depth + 1;
  while (true) {
    ASSIGN_OR_RETURN(bool more, it.Next(&t));
    if (!more) break;
    ctx_->ChargeHash(1);
    ASSIGN_OR_RETURN(GroupState s, TupleToState(t));
    std::string key = KeyOf(s.group_values);
    if (!overflow) {
      Merge(key, std::move(s));
      if (mem_bytes_ > budget_bytes_ && part.depth < kMaxSpillDepth) {
        // Re-partition one level deeper: dump the table and stream the rest.
        if (ctx_->faults() != nullptr)
          RETURN_IF_ERROR(ctx_->faults()->Check(faults::kExecSpill));
        SpillEvent ev;
        ev.plan_generation = ctx_->plan_generation();
        ev.node_id = node_->id;
        ev.op = "aggregate";
        ev.reason = "repartition";
        ev.partitions = static_cast<int>(fanout_);
        ev.at_ms = ctx_->SimElapsedMs();
        ctx_->trace()->spills.push_back(std::move(ev));
        overflow = true;
        for (size_t i = 0; i < fanout_; ++i) subs.push_back(ctx_->MakeTempHeap());
        for (auto& [k, st] : table_) {
          size_t p = KeyHash(k, depth) % fanout_;
          RETURN_IF_ERROR(subs[p]->Append(StateToTuple(st)).status());
        }
        table_.clear();
        mem_bytes_ = 0;
        ctx_->AddEvent("aggregate " + std::to_string(node_->id) +
                       ": partition overflow, re-partitioning at depth " +
                       std::to_string(depth));
      }
    } else {
      size_t p = KeyHash(key, depth) % fanout_;
      RETURN_IF_ERROR(subs[p]->Append(StateToTuple(s)).status());
    }
  }
  if (overflow) {
    for (auto& sp : subs) {
      RETURN_IF_ERROR(sp->Flush());
      pending_.push_front(PendingPartition{std::move(sp), depth});
    }
    table_.clear();
  }
  return Status::OK();
}

void HashAggregateOp::StartEmit() {
  emit_rows_.clear();
  emit_rows_.reserve(table_.size());
  for (auto& [key, state] : table_) emit_rows_.push_back(std::move(state));
  table_.clear();
  mem_bytes_ = 0;
  emit_pos_ = 0;
  emitting_ = true;
}

Tuple HashAggregateOp::FinalizeGroup(const GroupState& s) const {
  std::vector<Value> out;
  out.reserve(out_cols_.size());
  for (const OutCol& oc : out_cols_) {
    if (oc.is_group) {
      out.push_back(s.group_values[oc.idx]);
      continue;
    }
    const OneAgg& a = s.aggs[oc.idx];
    switch (node_->aggs[oc.idx].func) {
      case AggFunc::kSum:
        out.push_back(Value(a.sum));
        break;
      case AggFunc::kCount:
        out.push_back(Value(a.count));
        break;
      case AggFunc::kAvg:
        out.push_back(Value(a.count > 0 ? a.sum / static_cast<double>(a.count)
                                        : 0.0));
        break;
      case AggFunc::kMin:
        out.push_back(a.has_minmax ? a.min : Value(int64_t{0}));
        break;
      case AggFunc::kMax:
        out.push_back(a.has_minmax ? a.max : Value(int64_t{0}));
        break;
      case AggFunc::kNone:
        out.push_back(Value(int64_t{0}));
        break;
    }
  }
  return Tuple(std::move(out));
}

Result<bool> HashAggregateOp::NextImpl(Tuple* out) {
  RETURN_IF_ERROR(EnsureBlockingPhase());
  while (true) {
    if (!emitting_) StartEmit();
    if (emit_pos_ < emit_rows_.size()) {
      *out = FinalizeGroup(emit_rows_[emit_pos_++]);
      ctx_->ChargeTuples(1);
      emitted_any_ = true;
      return true;
    }
    if (!pending_.empty()) {
      PendingPartition part = std::move(pending_.front());
      pending_.pop_front();
      RETURN_IF_ERROR(AbsorbPartition(std::move(part)));
      StartEmit();
      continue;
    }
    // Global aggregate over an empty input yields one all-zero row.
    if (node_->group_cols.empty() && !emitted_any_ && !emitted_empty_global_) {
      emitted_empty_global_ = true;
      GroupState s;
      s.aggs.resize(node_->aggs.size());
      *out = FinalizeGroup(s);
      ctx_->ChargeTuples(1);
      return true;
    }
    return false;
  }
}

Status HashAggregateOp::CloseImpl() {
  table_.clear();
  pending_.clear();
  parts_.clear();
  emit_rows_.clear();
  return CloseChildren();
}

}  // namespace reoptdb
