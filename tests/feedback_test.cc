// Tests for the cardinality feedback loop and the plan-correction cache:
// signature canonicalization, store merge/staleness semantics, manifest
// persistence, estimator integration, cache validation, and end-to-end
// behaviour on a stale-catalog TPC-D instance where the eager gate
// reliably commits a plan switch.

#include <memory>
#include <string>
#include <vector>

#include "catalog/feedback_store.h"
#include "gtest/gtest.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_cache.h"
#include "optimizer/selectivity.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "test_util.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

using testing_util::Canon;
using testing_util::LoadEmpDept;

QuerySpec MustBind(Database* db, const std::string& sql) {
  Result<SelectStmtAst> ast = ParseSelect(sql);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  Result<QuerySpec> spec = Bind(ast.value(), *db->catalog());
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

// --- Signatures -----------------------------------------------------------

TEST(SignatureTest, PredicateOrderAndAliasIrrelevant) {
  Database db;
  LoadEmpDept(&db);
  QuerySpec a = MustBind(
      &db, "SELECT emp_id FROM emp WHERE dept_id = 3 AND emp_id > 10");
  QuerySpec b = MustBind(
      &db, "SELECT emp_id FROM emp e WHERE e.emp_id > 10 AND e.dept_id = 3");
  EXPECT_EQ(PredicateSignature(a, 0), PredicateSignature(b, 0));
  EXPECT_FALSE(PredicateSignature(a, 0).empty());

  QuerySpec unfiltered = MustBind(&db, "SELECT emp_id FROM emp");
  EXPECT_EQ(PredicateSignature(unfiltered, 0), "");
}

TEST(SignatureTest, JoinSignatureCanonicalAcrossAliases) {
  Database db;
  LoadEmpDept(&db);
  QuerySpec a = MustBind(&db,
                         "SELECT e.emp_id FROM emp e, dept d "
                         "WHERE e.dept_id = d.dept_id AND d.region_id = 1");
  QuerySpec b = MustBind(&db,
                         "SELECT x.emp_id FROM dept y, emp x "
                         "WHERE y.region_id = 1 AND x.dept_id = y.dept_id");
  // `b` lists dept first, so emp is ordinal 1 there — same join subset.
  EXPECT_EQ(JoinSignature(a, {0, 1}), JoinSignature(b, {0, 1}));
  EXPECT_NE(JoinSignature(a, {0, 1}), "");
  // Single relation and invalid ordinals are not join-keyable.
  EXPECT_EQ(JoinSignature(a, {0}), "");
  EXPECT_EQ(JoinSignature(a, {0, 7}), "");
}

TEST(SignatureTest, CrossProductNotKeyed) {
  Database db;
  LoadEmpDept(&db);
  QuerySpec spec = MustBind(&db, "SELECT e.emp_id FROM emp e, dept d");
  EXPECT_EQ(JoinSignature(spec, {0, 1}), "");
}

// --- Store merge / staleness semantics ------------------------------------

BaseRelFeedback MakeBase(double rows, bool partial = false,
                         double rows_at_obs = 200) {
  BaseRelFeedback fb;
  fb.table = "emp";
  fb.predicate_sig = "dept_id = 3";
  fb.observed_rows = rows;
  fb.selectivity = rows / rows_at_obs;
  fb.partial = partial;
  fb.base_rows_at_obs = rows_at_obs;
  fb.update_activity_at_obs = 0;
  return fb;
}

TEST(FeedbackStoreTest, PartialOnlyRaisesExactEntry) {
  CardinalityFeedbackStore store;
  store.ObserveBaseRel(MakeBase(100));
  // A smaller prefix count must not lower the exact observation.
  store.ObserveBaseRel(MakeBase(50, /*partial=*/true));
  const BaseRelFeedback* e = store.LookupBaseRel("emp", "dept_id = 3", 200, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->observed_rows, 100);
  EXPECT_FALSE(e->partial);
  // A larger prefix count raises it.
  store.ObserveBaseRel(MakeBase(150, /*partial=*/true));
  e = store.LookupBaseRel("emp", "dept_id = 3", 200, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->observed_rows, 150);
}

TEST(FeedbackStoreTest, ExactSupersedesPartial) {
  CardinalityFeedbackStore store;
  store.ObserveBaseRel(MakeBase(500, /*partial=*/true));
  store.ObserveBaseRel(MakeBase(80));
  const BaseRelFeedback* e = store.LookupBaseRel("emp", "dept_id = 3", 200, 0);
  ASSERT_NE(e, nullptr);
  // The exact count wins even though it is smaller: a lower bound carries
  // no information about the true total.
  EXPECT_DOUBLE_EQ(e->observed_rows, 80);
  EXPECT_FALSE(e->partial);
}

TEST(FeedbackStoreTest, ExactObservationsBlendByEwma) {
  FeedbackStoreOptions opts;
  opts.blend_alpha = 0.6;
  CardinalityFeedbackStore store(opts);
  store.ObserveBaseRel(MakeBase(100));
  store.ObserveBaseRel(MakeBase(200));
  const BaseRelFeedback* e = store.LookupBaseRel("emp", "dept_id = 3", 200, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_NEAR(e->observed_rows, 0.6 * 200 + 0.4 * 100, 1e-9);
}

TEST(FeedbackStoreTest, DriftedLookupEvicts) {
  CardinalityFeedbackStore store;
  store.ObserveBaseRel(MakeBase(100));  // anchored at 200 base rows
  // 30% row drift exceeds the 20% default threshold.
  EXPECT_EQ(store.LookupBaseRel("emp", "dept_id = 3", 260, 0), nullptr);
  EXPECT_EQ(store.base_entry_count(), 0u);
  EXPECT_EQ(store.counters().stale_evictions, 1u);
  // Activity drift alone also evicts.
  store.ObserveBaseRel(MakeBase(100));
  EXPECT_EQ(store.LookupBaseRel("emp", "dept_id = 3", 200, 0.5), nullptr);
  EXPECT_EQ(store.base_entry_count(), 0u);
}

TEST(FeedbackStoreTest, CapacityEvictsOldestEntry) {
  FeedbackStoreOptions opts;
  opts.max_entries = 2;
  CardinalityFeedbackStore store(opts);
  BaseRelFeedback a = MakeBase(10);
  a.predicate_sig = "a";
  BaseRelFeedback b = MakeBase(20);
  b.predicate_sig = "b";
  BaseRelFeedback c = MakeBase(30);
  c.predicate_sig = "c";
  store.ObserveBaseRel(a);
  store.ObserveBaseRel(b);
  store.ObserveBaseRel(c);
  EXPECT_EQ(store.base_entry_count(), 2u);
  EXPECT_EQ(store.LookupBaseRel("emp", "a", 200, 0), nullptr);
  EXPECT_NE(store.LookupBaseRel("emp", "c", 200, 0), nullptr);
}

TEST(FeedbackStoreTest, InvalidateTableDropsBaseAndJoinEntries) {
  CardinalityFeedbackStore store;
  store.ObserveBaseRel(MakeBase(100));
  JoinFeedback j;
  j.signature = "J{dept[],emp[]|dept.dept_id=emp.dept_id}";
  j.observed_rows = 42;
  j.tables.push_back({"emp", 200, 0});
  j.tables.push_back({"dept", 10, 0});
  store.ObserveJoin(j);
  JoinFeedback other;
  other.signature = "J{a[],b[]|a.x=b.x}";
  other.observed_rows = 7;
  other.tables.push_back({"a", 5, 0});
  other.tables.push_back({"b", 5, 0});
  store.ObserveJoin(other);

  store.InvalidateTable("emp");
  EXPECT_EQ(store.base_entry_count(), 0u);
  EXPECT_EQ(store.join_entry_count(), 1u);
}

// --- Manifest persistence -------------------------------------------------

TEST(FeedbackStoreTest, ManifestRoundTripsAllFields) {
  CardinalityFeedbackStore store;
  BaseRelFeedback fb = MakeBase(123);
  fb.avg_tuple_bytes = 34.5;
  ColumnFeedback cf;
  cf.has_bounds = true;
  cf.min = -3;
  cf.max = 99;
  cf.distinct = 17;
  cf.distinct_is_lower_bound = true;
  fb.columns["dept_id"] = cf;
  store.ObserveBaseRel(fb);
  JoinFeedback j;
  j.signature = "J{dept[],emp[]|dept.dept_id=emp.dept_id}";
  j.observed_rows = 42;
  j.partial = true;
  j.tables.push_back({"emp", 200, 0.1});
  store.ObserveJoin(j);

  CardinalityFeedbackStore loaded;
  REOPTDB_ASSERT_OK(loaded.ImportManifest(store.ExportManifest()));
  EXPECT_EQ(loaded.base_entry_count(), 1u);
  EXPECT_EQ(loaded.join_entry_count(), 1u);
  const BaseRelFeedback* e =
      loaded.LookupBaseRel("emp", "dept_id = 3", 200, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->observed_rows, 123);
  EXPECT_DOUBLE_EQ(e->avg_tuple_bytes, 34.5);
  ASSERT_EQ(e->columns.count("dept_id"), 1u);
  const ColumnFeedback& lc = e->columns.at("dept_id");
  EXPECT_TRUE(lc.has_bounds);
  EXPECT_DOUBLE_EQ(lc.min, -3);
  EXPECT_DOUBLE_EQ(lc.max, 99);
  EXPECT_DOUBLE_EQ(lc.distinct, 17);
  EXPECT_TRUE(lc.distinct_is_lower_bound);
  // Re-export is byte-identical (deterministic ordering).
  EXPECT_EQ(store.ExportManifest(), loaded.ExportManifest());
}

TEST(FeedbackStoreTest, CorruptManifestRejectedWholesale) {
  CardinalityFeedbackStore store;
  store.ObserveBaseRel(MakeBase(123));
  const std::string manifest = store.ExportManifest();

  CardinalityFeedbackStore target;
  target.ObserveBaseRel(MakeBase(999, false, 100));

  // Payload corruption: checksum mismatch.
  std::string corrupt = manifest;
  size_t pos = corrupt.find("{");
  ASSERT_NE(pos, std::string::npos);
  corrupt[pos + 1] = '~';
  EXPECT_FALSE(target.ImportManifest(corrupt).ok());
  // Bad header.
  EXPECT_FALSE(target.ImportManifest("NOPE v9\n" + manifest).ok());
  // Malformed record line.
  EXPECT_FALSE(target.ImportManifest("REOPTFB v1\nnot-a-checksum {}\n").ok());
  // All-or-nothing: the target still holds its original entry.
  EXPECT_EQ(target.base_entry_count(), 1u);
  const BaseRelFeedback* e = target.LookupBaseRel("emp", "dept_id = 3", 100, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->observed_rows, 999);
}

// --- Estimator integration ------------------------------------------------

TEST(EstimatorFeedbackTest, ExactFeedbackReplacesEstimate) {
  Database db;
  LoadEmpDept(&db);  // 200 emp rows
  QuerySpec spec = MustBind(&db, "SELECT emp_id FROM emp WHERE dept_id = 3");

  Estimator plain(db.catalog(), &spec);
  Result<DerivedRel> before = plain.BaseRel(0);
  ASSERT_TRUE(before.ok());

  CardinalityFeedbackStore store;
  BaseRelFeedback fb;
  fb.table = "emp";
  fb.predicate_sig = PredicateSignature(spec, 0);
  fb.observed_rows = 150;
  fb.selectivity = 150.0 / 200.0;
  fb.base_rows_at_obs = 200;
  store.ObserveBaseRel(fb);

  std::vector<FeedbackApplied> log;
  Estimator est(db.catalog(), &spec, nullptr, false, &store, &log);
  Result<DerivedRel> after = est.BaseRel(0);
  ASSERT_TRUE(after.ok());
  // Exact feedback: the observed selectivity re-applied to current rows.
  EXPECT_NEAR(after.value().rows, 150.0, 1e-6);
  EXPECT_NE(after.value().rows, before.value().rows);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].scope, "base");
  EXPECT_EQ(log[0].table, "emp");
  EXPECT_FALSE(log[0].partial);
  // Dedup: re-deriving the same rel logs nothing new.
  ASSERT_TRUE(est.BaseRel(0).ok());
  EXPECT_EQ(log.size(), 1u);
}

TEST(EstimatorFeedbackTest, PartialFeedbackOnlyRaises) {
  Database db;
  LoadEmpDept(&db);
  QuerySpec spec = MustBind(&db, "SELECT emp_id FROM emp WHERE dept_id = 3");

  Estimator plain(db.catalog(), &spec);
  Result<DerivedRel> base = plain.BaseRel(0);
  ASSERT_TRUE(base.ok());
  const double base_est = base.value().rows;

  // A partial observation BELOW the estimate must not lower it.
  CardinalityFeedbackStore low;
  BaseRelFeedback fb;
  fb.table = "emp";
  fb.predicate_sig = PredicateSignature(spec, 0);
  fb.observed_rows = 1;
  fb.selectivity = 1.0 / 200.0;
  fb.partial = true;
  fb.base_rows_at_obs = 200;
  low.ObserveBaseRel(fb);
  Estimator est_low(db.catalog(), &spec, nullptr, false, &low);
  Result<DerivedRel> low_rel = est_low.BaseRel(0);
  ASSERT_TRUE(low_rel.ok());
  EXPECT_DOUBLE_EQ(low_rel.value().rows, base_est);

  // A partial observation ABOVE the estimate raises it to the bound.
  CardinalityFeedbackStore high;
  fb.observed_rows = 180;
  fb.selectivity = 180.0 / 200.0;
  high.ObserveBaseRel(fb);
  Estimator est_high(db.catalog(), &spec, nullptr, false, &high);
  Result<DerivedRel> high_rel = est_high.BaseRel(0);
  ASSERT_TRUE(high_rel.ok());
  EXPECT_NEAR(high_rel.value().rows, 180.0, 1e-6);
}

TEST(EstimatorFeedbackTest, RuntimeOverridesBeatFeedback) {
  Database db;
  LoadEmpDept(&db);
  QuerySpec spec = MustBind(&db, "SELECT emp_id FROM emp e WHERE dept_id = 3");

  CardinalityFeedbackStore store;
  BaseRelFeedback fb;
  fb.table = "emp";
  fb.predicate_sig = PredicateSignature(spec, 0);
  fb.observed_rows = 150;
  fb.selectivity = 0.75;
  fb.base_rows_at_obs = 200;
  store.ObserveBaseRel(fb);

  BaseRelOverrides overrides;
  DerivedRel live;
  live.rows = 42;
  live.avg_tuple_bytes = 16;
  overrides["e"] = live;

  std::vector<FeedbackApplied> log;
  Estimator est(db.catalog(), &spec, &overrides, false, &store, &log);
  Result<DerivedRel> rel = est.BaseRel(0);
  ASSERT_TRUE(rel.ok());
  // The mid-query observation is fresher than any stored feedback.
  EXPECT_DOUBLE_EQ(rel.value().rows, 42);
  EXPECT_TRUE(log.empty());
}

TEST(EstimatorFeedbackTest, JoinFeedbackAppliedThroughOptimizer) {
  Database db;
  LoadEmpDept(&db);
  QuerySpec spec = MustBind(&db,
                            "SELECT e.emp_id FROM emp e, dept d "
                            "WHERE e.dept_id = d.dept_id");
  Result<TableInfo*> emp = db.catalog()->Get("emp");
  Result<TableInfo*> dept = db.catalog()->Get("dept");
  ASSERT_TRUE(emp.ok() && dept.ok());

  CardinalityFeedbackStore store;
  JoinFeedback j;
  j.signature = JoinSignature(spec, {0, 1});
  ASSERT_NE(j.signature, "");
  j.observed_rows = 777;
  j.tables.push_back(
      {"emp", static_cast<double>(emp.value()->heap->tuple_count()), 0});
  j.tables.push_back(
      {"dept", static_cast<double>(dept.value()->heap->tuple_count()), 0});
  store.ObserveJoin(j);

  Optimizer opt(db.catalog(), &db.cost_model(), OptimizerOptions{}, &store);
  Result<OptimizeResult> planned = opt.Plan(spec);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  bool join_applied = false;
  for (const FeedbackApplied& fa : planned.value().feedback_applied) {
    if (fa.scope == "join") {
      join_applied = true;
      EXPECT_DOUBLE_EQ(fa.fb_rows, 777);
    }
  }
  EXPECT_TRUE(join_applied);
}

// --- Plan-correction cache ------------------------------------------------

std::unique_ptr<PlanNode> PlanFor(Database* db, const QuerySpec& spec) {
  Optimizer opt(db->catalog(), &db->cost_model());
  Result<OptimizeResult> r = opt.Plan(spec);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r.value().plan);
}

TEST(PlanCacheTest, HitReturnsResetClone) {
  Database db;
  LoadEmpDept(&db);
  QuerySpec spec = MustBind(&db,
                            "SELECT e.emp_id FROM emp e, dept d "
                            "WHERE e.dept_id = d.dept_id");
  std::unique_ptr<PlanNode> plan = PlanFor(&db, spec);
  ASSERT_NE(plan, nullptr);
  // Simulate a finished run's leftovers on the installed plan.
  plan->observed.valid = true;
  plan->mem_budget_pages = 99;
  plan->improved.cardinality = plan->est.cardinality + 1000;

  PlanCorrectionCache cache;
  cache.Install(spec.ToSql(), *plan, 12.5, 256, *db.catalog());
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.counters().installs, 1u);

  std::string reason;
  double saved = 0;
  uint64_t hits = 0;
  std::unique_ptr<PlanNode> got =
      cache.Lookup(spec.ToSql(), 256, *db.catalog(), &reason, &saved, &hits);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(reason, "hit");
  EXPECT_DOUBLE_EQ(saved, 12.5);
  EXPECT_EQ(hits, 1u);
  got->PostOrder([](PlanNode* n) {
    EXPECT_FALSE(n->observed.valid);
    EXPECT_DOUBLE_EQ(n->mem_budget_pages, 0);
    EXPECT_DOUBLE_EQ(n->improved.cardinality, n->est.cardinality);
  });

  EXPECT_EQ(cache.Lookup("SELECT nothing", 256, *db.catalog(), &reason,
                         nullptr, nullptr),
            nullptr);
  EXPECT_EQ(reason, "miss");
}

TEST(PlanCacheTest, SchemaChangeEvicts) {
  Database db;
  LoadEmpDept(&db);
  QuerySpec spec = MustBind(&db, "SELECT emp_id FROM emp WHERE dept_id = 3");
  PlanCorrectionCache cache;
  cache.Install(spec.ToSql(), *PlanFor(&db, spec), 1, 256, *db.catalog());
  ASSERT_EQ(cache.entry_count(), 1u);

  REOPTDB_ASSERT_OK(db.CreateIndex("emp", "dept_id"));
  std::string reason;
  EXPECT_EQ(cache.Lookup(spec.ToSql(), 256, *db.catalog(), &reason, nullptr,
                         nullptr),
            nullptr);
  EXPECT_EQ(reason, "schema_changed");
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.counters().schema_evictions, 1u);
}

TEST(PlanCacheTest, RowDriftEvicts) {
  Database db;
  LoadEmpDept(&db);  // 200 emp rows
  QuerySpec spec = MustBind(&db, "SELECT emp_id FROM emp WHERE dept_id = 3");
  PlanCorrectionCache cache;
  cache.Install(spec.ToSql(), *PlanFor(&db, spec), 1, 256, *db.catalog());

  std::vector<Tuple> extra;
  for (int i = 0; i < 100; ++i) {  // 50% growth > 20% threshold
    extra.push_back(Tuple({Value(int64_t{1000 + i}), Value(int64_t{3}),
                           Value(1.0), Value("x")}));
  }
  REOPTDB_ASSERT_OK(db.BulkLoad("emp", extra));
  std::string reason;
  EXPECT_EQ(cache.Lookup(spec.ToSql(), 256, *db.catalog(), &reason, nullptr,
                         nullptr),
            nullptr);
  EXPECT_EQ(reason, "stats_stale");
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.counters().stale_evictions, 1u);
}

TEST(PlanCacheTest, MemoryShortfallRejectsButKeepsEntry) {
  Database db;
  LoadEmpDept(&db);
  QuerySpec spec = MustBind(&db, "SELECT emp_id FROM emp WHERE dept_id = 3");
  PlanCorrectionCache cache;
  cache.Install(spec.ToSql(), *PlanFor(&db, spec), 1, 256, *db.catalog());

  std::string reason;
  EXPECT_EQ(cache.Lookup(spec.ToSql(), 128, *db.catalog(), &reason, nullptr,
                         nullptr),
            nullptr);
  EXPECT_EQ(reason, "insufficient_memory");
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.counters().memory_rejects, 1u);
  // Memory pressure is transient: the full budget hits again.
  EXPECT_NE(cache.Lookup(spec.ToSql(), 256, *db.catalog(), &reason, nullptr,
                         nullptr),
            nullptr);
  EXPECT_EQ(reason, "hit");
}

// --- End-to-end: stale TPC-D, eager gate ----------------------------------

DatabaseOptions SmallFeedbackOptions() {
  DatabaseOptions opts;
  opts.buffer_pool_pages = 128;
  opts.query_mem_pages = 48;
  opts.enable_feedback = true;
  return opts;
}

void LoadStaleTpcd(Database* db) {
  tpcd::TpcdOptions gen;
  gen.scale_factor = 0.003;
  gen.update_fraction = 1.0;  // stale catalog: estimates genuinely wrong
  REOPTDB_ASSERT_OK(tpcd::Load(db, gen));
}

ReoptOptions EagerGate() {
  ReoptOptions eager;
  eager.mode = ReoptMode::kFull;
  eager.theta2 = -1.0;  // any degradation (even none) passes Eq. (2)
  eager.theta1 = 1e9;
  return eager;
}

TEST(FeedbackIntegrationTest, SwitchHarvestsAndSecondRunApplies) {
  Database db(SmallFeedbackOptions());
  LoadStaleTpcd(&db);

  Result<QueryResult> r1 = db.ExecuteWith(tpcd::Q5Sql(), EagerGate());
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_GE(r1.value().report.plans_switched, 1);
  EXPECT_FALSE(db.feedback_store()->empty());
  EXPECT_GT(db.feedback_store()->counters().observations, 0u);

  Result<QueryResult> r2 = db.ExecuteWith(tpcd::Q5Sql(), EagerGate());
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  // The repeat's initial optimization consulted the harvested feedback.
  EXPECT_FALSE(r2.value().report.trace.feedback_applied.empty());
  // Feedback must never change results.
  EXPECT_EQ(Canon(r1.value().rows), Canon(r2.value().rows));

  DatabaseOptions control_opts = SmallFeedbackOptions();
  control_opts.enable_feedback = false;
  Database control(control_opts);
  LoadStaleTpcd(&control);
  Result<QueryResult> rc = control.ExecuteWith(tpcd::Q5Sql(), EagerGate());
  ASSERT_TRUE(rc.ok()) << rc.status().ToString();
  EXPECT_EQ(Canon(r1.value().rows), Canon(rc.value().rows));
  EXPECT_TRUE(rc.value().report.trace.feedback_applied.empty());
  EXPECT_TRUE(control.feedback_store()->empty());
}

TEST(FeedbackIntegrationTest, ManifestSurvivesRestart) {
  Database db(SmallFeedbackOptions());
  LoadStaleTpcd(&db);
  Result<QueryResult> r1 = db.ExecuteWith(tpcd::Q5Sql(), EagerGate());
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_FALSE(db.feedback_store()->empty());
  const std::string manifest = db.feedback_store()->ExportManifest();

  // "Restart": a fresh instance over identically loaded data imports the
  // manifest and immediately benefits.
  Database db2(SmallFeedbackOptions());
  LoadStaleTpcd(&db2);
  REOPTDB_ASSERT_OK(db2.feedback_store()->ImportManifest(manifest));
  EXPECT_EQ(db2.feedback_store()->base_entry_count(),
            db.feedback_store()->base_entry_count());
  EXPECT_EQ(db2.feedback_store()->join_entry_count(),
            db.feedback_store()->join_entry_count());
  Result<QueryResult> r2 = db2.ExecuteWith(tpcd::Q5Sql(), EagerGate());
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_FALSE(r2.value().report.trace.feedback_applied.empty());
  EXPECT_EQ(Canon(r1.value().rows), Canon(r2.value().rows));
}

TEST(PlanCacheIntegrationTest, RepeatStartsOnCorrectedPlan) {
  DatabaseOptions opts = SmallFeedbackOptions();
  opts.enable_plan_cache = true;
  Database db(opts);
  LoadStaleTpcd(&db);

  Result<QueryResult> r1 = db.ExecuteWith(tpcd::Q5Sql(), EagerGate());
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_GE(r1.value().report.plans_switched, 1);
  EXPECT_TRUE(r1.value().report.trace.plan_cache_hits.empty());
  ASSERT_EQ(db.plan_cache()->entry_count(), 1u);

  Result<QueryResult> r2 = db.ExecuteWith(tpcd::Q5Sql(), EagerGate());
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r2.value().report.trace.plan_cache_hits.size(), 1u);
  EXPECT_GT(r2.value().report.trace.plan_cache_hits[0].saved_opt_ms, 0);
  EXPECT_EQ(db.plan_cache()->counters().hits, 1u);
  EXPECT_EQ(Canon(r1.value().rows), Canon(r2.value().rows));
}

TEST(PlanCacheIntegrationTest, DropTableInvalidatesBothStores) {
  DatabaseOptions opts = SmallFeedbackOptions();
  opts.enable_plan_cache = true;
  Database db(opts);
  LoadStaleTpcd(&db);
  Result<QueryResult> r1 = db.ExecuteWith(tpcd::Q5Sql(), EagerGate());
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_GE(r1.value().report.plans_switched, 1);
  ASSERT_FALSE(db.feedback_store()->empty());
  ASSERT_EQ(db.plan_cache()->entry_count(), 1u);

  Result<QueryResult> drop = db.ExecuteSql("DROP TABLE lineitem");
  ASSERT_TRUE(drop.ok()) << drop.status().ToString();
  // Q5's cached plan reads lineitem, so the cache drains; no surviving
  // feedback entry may reference the dropped table.
  EXPECT_EQ(db.plan_cache()->entry_count(), 0u);
  EXPECT_EQ(db.feedback_store()->Describe().find("lineitem"),
            std::string::npos);
}

TEST(FeedbackDeterminismTest, RowAndBatchModesIdentical) {
  std::vector<std::vector<std::string>> per_mode;
  for (int mode = 0; mode < 2; ++mode) {  // 0 = default batch, 1 = row-at-a-time
    DatabaseOptions opts = SmallFeedbackOptions();
    opts.enable_plan_cache = true;
    Database db(opts);
    LoadStaleTpcd(&db);
    ReoptOptions eager = EagerGate();
    if (mode == 1) eager.batch_size = 1;
    std::vector<std::string> canon;
    for (int wave = 0; wave < 3; ++wave) {
      Result<QueryResult> r = db.ExecuteWith(tpcd::Q5Sql(), eager);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      for (std::string& s : Canon(r.value().rows)) canon.push_back(std::move(s));
    }
    per_mode.push_back(std::move(canon));
  }
  ASSERT_EQ(per_mode.size(), 2u);
  // Feedback + plan cache change *when* plans improve, never *what* the
  // query returns — across waves and across batch modes.
  EXPECT_EQ(per_mode[0], per_mode[1]);
}

}  // namespace
}  // namespace reoptdb
