# Empty compiler generated dependencies file for reoptdb_shell.
# This may be replaced when dependencies are built.
