#include "types/tuple.h"

#include <cstring>
#include <sstream>

namespace reoptdb {

size_t Tuple::SerializedSize() const {
  size_t total = sizeof(uint16_t);
  for (const Value& v : values_) total += v.SerializedSize();
  return total;
}

void Tuple::SerializeTo(std::string* out) const {
  uint16_t n = static_cast<uint16_t>(values_.size());
  out->append(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const Value& v : values_) v.SerializeTo(out);
}

Result<Tuple> Tuple::Deserialize(const char* data, size_t size, size_t* offset) {
  if (*offset + sizeof(uint16_t) > size)
    return Status::Internal("tuple: truncated field count");
  uint16_t n;
  std::memcpy(&n, data + *offset, sizeof(n));
  *offset += sizeof(n);
  std::vector<Value> values;
  values.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(Value v, Value::Deserialize(data, size, offset));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

Status Tuple::DeserializeInto(const char* data, size_t size, size_t* offset,
                              Tuple* out) {
  if (*offset + sizeof(uint16_t) > size)
    return Status::Internal("tuple: truncated field count");
  uint16_t n;
  std::memcpy(&n, data + *offset, sizeof(n));
  *offset += sizeof(n);
  out->values_.clear();
  out->values_.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(Value v, Value::Deserialize(data, size, offset));
    out->values_.push_back(std::move(v));
  }
  return Status::OK();
}

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  std::vector<Value> values = left.values_;
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Tuple(std::move(values));
}

uint64_t Tuple::HashOn(const std::vector<size_t>& cols) const {
  uint64_t h = 0x12345678abcdef01ULL;
  for (size_t c : cols) {
    h = h * 0x100000001b3ULL ^ values_[c].Hash();
  }
  return h;
}

bool Tuple::EqualsOn(const Tuple& other, const std::vector<size_t>& mine,
                     const std::vector<size_t>& theirs) const {
  for (size_t i = 0; i < mine.size(); ++i) {
    if (values_[mine[i]] != other.values_[theirs[i]]) return false;
  }
  return true;
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i) os << ", ";
    os << values_[i].ToString();
  }
  os << "]";
  return os.str();
}

}  // namespace reoptdb
