// Simulated shared-nothing cluster (DESIGN.md §15, §16).
//
// The cluster wraps one coordinator Database — which keeps the full copy of
// every base table and stays the bit-identical single-node oracle — plus N
// simulated worker nodes, each with its own DiskManager (private simulated
// I/O clock), BufferPool, and Catalog of partition tables. Shard() splits a
// loaded coordinator table across the nodes by hash or range, appending a
// per-row global ordinal column that the sharded executor later uses to
// reassemble single-node tuple order exactly.
//
// Redundancy has two tiers. The coordinator's heap is the durable copy of
// last resort (think: a distributed file system). On top of it,
// `replication_factor` k > 1 keeps every partition slice on k distinct
// nodes: the primary copy in the partition table queries scan, plus k-1
// replica copies in per-node `__replica_<table>` tables that queries never
// touch. Losing a node then costs only local I/O on the survivors — a
// surviving replica is promoted to primary and the k-way invariant is
// re-established — with the coordinator re-read reserved for slices whose
// every copy died (see shard/replica_manager.h).
//
// Membership changes are fenced by a cluster-wide epoch: every MarkDead and
// every failover bumps it, the executor stamps it into exchange buffers and
// journal records, and a resurrected "zombie" node still sending at its
// death-time epoch is dropped at the channel (exec/exchange_op.h).
//
// Node death is decided by a heartbeat state machine, not by the first
// failed transfer: a missed beat moves a node to kSuspect and starts a
// sim-clock lease; the node returns to kAlive on the next successful stage,
// or to kDead when the lease expires or max_missed_beats accumulate. Only
// an injected node.crash kills instantly.

#ifndef REOPTDB_SHARD_SHARD_CLUSTER_H_
#define REOPTDB_SHARD_SHARD_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "exec/exchange_op.h"
#include "shard/skew_detector.h"

namespace reoptdb {

class ReplicaManager;

/// Cluster configuration.
struct ShardOptions {
  int num_nodes = 4;
  /// Per-node buffer pool (pages).
  size_t node_pool_pages = 512;
  /// Memory budget (pages) a node grants each fragment's hash join.
  double node_mem_pages = 128;
  /// Copies of every partition slice kept on distinct nodes: the primary
  /// the executor scans plus k-1 replicas (clamped to [1, num_nodes]).
  /// 1 = the legacy layout where the coordinator is the only redundancy.
  int replication_factor = 1;
  /// Simulated cost of one heartbeat round (charged per missed beat).
  double heartbeat_ms = 5.0;
  /// Missed beats after which a suspect node is declared dead.
  int max_missed_beats = 3;
  /// Suspicion lease: a node still suspect this many sim-ms after its
  /// first missed beat is declared dead even under max_missed_beats.
  double lease_ms = 200.0;
  /// Skew / straggler thresholds (see shard/skew_detector.h).
  SkewThresholds skew;
  /// Mid-query defenses on (distribution switches, straggler re-weighting).
  /// Off = the control arm: triggers are still *recorded*, never acted on.
  bool reopt_enabled = true;
  /// Per-node simulated slowdown multiplier (empty = all 1.0). A value of
  /// 3.0 makes that node's charged time 3x — the straggler scenario.
  std::vector<double> node_slowdown;
  /// Base options for the coordinator Database. The optimizer profile is
  /// overridden to hash-only left-deep plans (the shapes the sharded
  /// executor distributes); everything else is honored.
  DatabaseOptions coordinator;
};

/// Heartbeat health of a node (DESIGN.md §16).
enum class NodeHealth { kAlive, kSuspect, kDead };

/// One simulated worker node.
struct ShardNode {
  int id = 0;
  /// False iff health == kDead (kept alongside health because most callers
  /// only care about membership, not the suspicion ladder).
  bool alive = true;
  NodeHealth health = NodeHealth::kAlive;
  /// Consecutive missed heartbeats while suspect (reset on recovery).
  int missed_beats = 0;
  /// Sim-clock deadline of the current suspicion lease (valid iff suspect).
  double lease_expiry_ms = 0;
  /// Membership epoch the node last observed. Frozen at death — a zombie
  /// resurrected later still stamps this stale epoch on its sends, which is
  /// exactly what the exchange fence rejects.
  uint64_t epoch_seen = 1;
  /// Routing weight for hash repartitioning (lowered for stragglers).
  double weight = 1.0;
  double slowdown = 1.0;
  std::unique_ptr<DiskManager> disk;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<Catalog> catalog;
  /// Cumulative exchange counters (across queries).
  NetChannelStats net;
};

/// \brief Coordinator + N simulated worker nodes.
class ShardCluster {
 public:
  explicit ShardCluster(ShardOptions opts = ShardOptions{});
  ~ShardCluster();

  Database* db() { return db_.get(); }
  const ShardOptions& options() const { return opts_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  ShardNode* node(int id) { return nodes_[static_cast<size_t>(id)].get(); }
  const ShardNode* node(int id) const {
    return nodes_[static_cast<size_t>(id)].get();
  }
  std::vector<int> AliveNodes() const;
  /// The coordinator's injector, shared by every node's disk and the
  /// exchange channels — one schedule drives the whole cluster.
  FaultInjector* faults() { return db_->faults(); }
  /// Replica directory and failover engine (never null; inert at k = 1).
  ReplicaManager* replicas() { return replicas_.get(); }
  const ReplicaManager* replicas() const { return replicas_.get(); }

  /// Qualifier/name of the ordinal column appended to partition tables.
  static constexpr char kOrdQualifier[] = "__shard";
  static std::string OrdColumnName(const std::string& table) {
    return "__ord_" + table;
  }

  /// Partitions a loaded coordinator table across all nodes: creates the
  /// per-node partition tables (same name, schema + trailing ordinal
  /// column), routes every coordinator row by `p`, places k-1 replica
  /// copies per slice, and records the partitioning in the coordinator
  /// catalog. Re-sharding an already sharded table replaces its partitions.
  Status Shard(const std::string& table, TablePartitioning p);
  Status ShardByHash(const std::string& table, const std::string& column) {
    TablePartitioning p;
    p.kind = TablePartitioning::Kind::kHash;
    p.column = column;
    p.num_shards = num_nodes();
    return Shard(table, std::move(p));
  }

  // --- Membership epoch (fencing token).

  /// Current membership epoch; starts at 1 and bumps on every MarkDead and
  /// every completed failover. Stamped into exchange buffers and journal
  /// stage records; 0 is reserved for "fencing disabled".
  uint64_t epoch() const { return epoch_; }

  // --- Heartbeat / suspicion (sim clock).

  /// Outcome of a missed heartbeat.
  enum class BeatVerdict { kSuspect, kDead };

  /// Registers a missed heartbeat against `id`: the first miss moves the
  /// node to kSuspect and starts the lease; the verdict flips to kDead when
  /// max_missed_beats accumulate or the lease expires on the cluster sim
  /// clock. The caller owns the consequences (retry vs MarkDead) and is
  /// expected to charge heartbeat_ms to the cluster per miss.
  BeatVerdict ReportMissedBeat(int id);

  /// A suspect node answered (its stage attempt succeeded): back to kAlive.
  void ClearSuspicion(int id);

  // --- Node failure.

  /// Declares a node dead: drops it from membership, freezes the epoch it
  /// last saw (for zombie fencing), and bumps the membership epoch. Its
  /// partitions stay on its (lost) disk; call RehomeDeadNode to rebuild
  /// them on the survivors.
  Status MarkDead(int id);

  /// Most recently declared-dead node (-1 if none died yet). The zombie
  /// resurrection fault point replays this node's stale sends.
  int last_dead() const { return last_dead_; }

  struct RehomeResult {
    /// Total rows restored onto survivors (promoted + coordinator).
    uint64_t rehomed_rows = 0;
    /// Rows recovered by promoting a surviving replica (local node I/O).
    uint64_t promoted_rows = 0;
    /// Rows whose every copy died and had to be re-read from the
    /// coordinator heap, the durable copy of last resort.
    uint64_t coordinator_rows = 0;
    /// Replica row-copies re-created to restore the k-way invariant
    /// (one count per row appended to a new replica holder).
    uint64_t restored_copies = 0;
    /// Simulated cost: coordinator re-read (if any) + the slowest
    /// survivor's local I/O + the copy traffic (nodes work in parallel).
    double sim_ms = 0;
  };

  /// Rebuilds every slice the dead node held. With replicas a surviving
  /// copy is promoted in place (zero coordinator reads for that slice);
  /// only slices with no surviving copy fall back to the coordinator
  /// re-read. Afterwards the k-way replica invariant is re-established and
  /// the routing directory updated so subsequent queries and stage re-runs
  /// see the new layout. `repairs` (optional) receives one record per
  /// rebuilt copy for the query trace.
  Result<RehomeResult> RehomeDeadNode(
      int dead, std::vector<struct ReplicaRepairRecord>* repairs = nullptr);

  /// Node currently holding append ordinal `ord` of `table` (-1 unknown).
  int RouteOf(const std::string& table, uint64_t ord) const;

  // --- Makespan accounting (simulated wall-clock across the cluster).

  void AddClusterMs(double ms) { cluster_ms_ += ms; }
  double cluster_ms() const { return cluster_ms_; }

  // --- Anti-entropy scrub generation.

  /// Total corrupt/divergent copies the scrubber has found (monotonic).
  /// The reoptimizer watches this counter (Database::SetScrubSignal): a
  /// bump between stages forces journaled-temp revalidation before any
  /// resume decision trusts the journal.
  uint64_t scrub_findings() const { return scrub_findings_; }
  void NoteScrubFindings(uint64_t n) { scrub_findings_ += n; }

  /// Pages still allocated across every *alive* disk plus the coordinator
  /// (leak check; a dead node's disk is lost hardware and not counted).
  size_t LivePagesAliveNodes() const;

 private:
  friend class ShardedExecutor;
  friend class ReplicaManager;
  friend class Scrubber;

  ShardOptions opts_;
  std::unique_ptr<Database> db_;
  std::vector<std::unique_ptr<ShardNode>> nodes_;
  std::unique_ptr<ReplicaManager> replicas_;
  /// Partition directory: table -> owning node id per append ordinal.
  std::map<std::string, std::vector<int>> routes_;
  uint64_t epoch_ = 1;
  int last_dead_ = -1;
  uint64_t scrub_findings_ = 0;
  double cluster_ms_ = 0;
};

}  // namespace reoptdb

#endif  // REOPTDB_SHARD_SHARD_CLUSTER_H_
