// LRU buffer pool over the simulated disk.
//
// Fetches that hit the pool cost nothing; misses read from the DiskManager
// (charged). Dirty evictions write back (charged). The pool size models the
// paper's 32MB-per-node buffer pool, scaled with the dataset (DESIGN.md §3).

#ifndef REOPTDB_STORAGE_BUFFER_POOL_H_
#define REOPTDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace reoptdb {

/// Buffer-pool hit/miss counters.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t dirty_evictions = 0;
};

/// \brief Fixed-capacity page cache with LRU replacement and pin counts.
class BufferPool {
 public:
  /// `capacity_pages` frames backed by `disk`.
  BufferPool(DiskManager* disk, size_t capacity_pages);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page, loading it from disk on a miss. Returns the frame's
  /// page bytes; valid until Unpin.
  Result<Page*> FetchPage(PageId id);

  /// Allocates a fresh page on disk and pins it (zeroed, marked dirty).
  Result<std::pair<PageId, Page*>> NewPage();

  /// Releases a pin; `dirty` marks the frame for write-back on eviction.
  Status Unpin(PageId id, bool dirty);

  /// Writes the page back if dirty (no-op when clean or absent).
  Status FlushPage(PageId id);

  /// Flushes all dirty resident pages.
  Status FlushAll();

  /// Drops the page from the pool (must be unpinned) and frees it on disk.
  Status DeletePage(PageId id);

  /// Drops the page from the pool without disk I/O (for pages about to be
  /// freed wholesale, e.g. temp files). Page must be unpinned or absent.
  void Discard(PageId id);

  const BufferPoolStats& stats() const { return stats_; }
  size_t capacity() const { return frames_.size(); }
  DiskManager* disk() const { return disk_; }

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    Page page;
  };

  /// Picks an unpinned victim frame (LRU), evicting its current page.
  Result<size_t> GetVictimFrame();
  void TouchLru(size_t frame_idx);

  DiskManager* disk_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> table_;  // page id -> frame index
  std::list<size_t> lru_;                     // front = least recent
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  std::vector<size_t> free_frames_;
  BufferPoolStats stats_;
};

/// \brief RAII pin guard.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id, Page* page)
      : pool_(pool), id_(id), page_(page) {}
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    Release();
    pool_ = o.pool_;
    id_ = o.id_;
    page_ = o.page_;
    dirty_ = o.dirty_;
    o.pool_ = nullptr;
    o.page_ = nullptr;
    return *this;
  }
  ~PageGuard() { Release(); }

  /// Fetches and pins `id`.
  static Result<PageGuard> Fetch(BufferPool* pool, PageId id);

  Page* page() const { return page_; }
  PageId id() const { return id_; }
  bool valid() const { return page_ != nullptr; }
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ && page_) {
      pool_->Unpin(id_, dirty_);
      pool_ = nullptr;
      page_ = nullptr;
    }
  }

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace reoptdb

#endif  // REOPTDB_STORAGE_BUFFER_POOL_H_
