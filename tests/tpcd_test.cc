// Tests for the TPC-D generator and the paper's query set.

#include <map>
#include <set>

#include "gtest/gtest.h"
#include "test_util.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

using testing_util::Canon;

class TpcdTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatabaseOptions opts;
    opts.buffer_pool_pages = 512;
    opts.query_mem_pages = 64;
    db_ = new Database(opts);
    tpcd::TpcdOptions gen;
    gen.scale_factor = 0.002;
    Status st = tpcd::Load(db_, gen);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* TpcdTest::db_ = nullptr;

TEST_F(TpcdTest, RowCountsMatchScale) {
  tpcd::TpcdSizes s = tpcd::SizesFor(0.002);
  auto count = [&](const char* t) {
    return db_->catalog()->Get(t).value()->heap->tuple_count();
  };
  EXPECT_EQ(count("region"), 5u);
  EXPECT_EQ(count("nation"), 25u);
  EXPECT_EQ(count("supplier"), static_cast<uint64_t>(s.supplier));
  EXPECT_EQ(count("customer"), static_cast<uint64_t>(s.customer));
  EXPECT_EQ(count("part"), static_cast<uint64_t>(s.part));
  EXPECT_EQ(count("orders"), static_cast<uint64_t>(s.orders));
  // lineitem: 1..7 lines per order, average 4.
  uint64_t li = count("lineitem");
  EXPECT_GT(li, static_cast<uint64_t>(s.orders) * 2);
  EXPECT_LT(li, static_cast<uint64_t>(s.orders) * 7);
}

TEST_F(TpcdTest, ForeignKeysResolve) {
  // Every customer's nation exists; every lineitem's order exists.
  Result<QueryResult> r1 = db_->Execute(
      "SELECT COUNT(*) FROM customer, nation WHERE c_nationkey = n_nationkey");
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  uint64_t customers =
      db_->catalog()->Get("customer").value()->heap->tuple_count();
  EXPECT_EQ(r1.value().rows[0].at(0).AsInt(),
            static_cast<int64_t>(customers));

  Result<QueryResult> r2 = db_->Execute(
      "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey");
  ASSERT_TRUE(r2.ok());
  uint64_t lines =
      db_->catalog()->Get("lineitem").value()->heap->tuple_count();
  EXPECT_EQ(r2.value().rows[0].at(0).AsInt(), static_cast<int64_t>(lines));
}

TEST_F(TpcdTest, DateCorrelationHolds) {
  // l_shipdate strictly follows the order's o_orderdate (the engine's SQL
  // subset has no cross-relation inequality, so verify via direct scans).
  std::map<int64_t, int64_t> orderdate;
  {
    const TableInfo* orders = db_->catalog()->Get("orders").value();
    HeapFile::Iterator it = orders->heap->Scan();
    Tuple t;
    while (it.Next(&t).value()) orderdate[t.at(0).AsInt()] = t.at(4).AsInt();
  }
  const TableInfo* li = db_->catalog()->Get("lineitem").value();
  HeapFile::Iterator it = li->heap->Scan();
  Tuple t;
  int violations = 0;
  while (it.Next(&t).value()) {
    int64_t okey = t.at(0).AsInt();
    int64_t shipdate = t.at(9).AsInt();
    ASSERT_TRUE(orderdate.count(okey));
    if (shipdate <= orderdate[okey]) ++violations;
  }
  EXPECT_EQ(violations, 0);
}

TEST_F(TpcdTest, DiscountQuantityCorrelationHolds) {
  // High quantities get discounts >= 0.04 by construction.
  Result<QueryResult> r = db_->Execute(
      "SELECT COUNT(*) FROM lineitem WHERE l_quantity >= 25 AND "
      "l_discount < 0.04");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0].at(0).AsInt(), 0);
}

TEST_F(TpcdTest, DerivedYearColumnsConsistent) {
  Result<QueryResult> r = db_->Execute(
      "SELECT MIN(o_orderyear), MAX(o_orderyear) FROM orders");
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value().rows[0].at(0).AsInt(), 1992);
  EXPECT_LE(r.value().rows[0].at(1).AsInt(), 1999);
}

TEST_F(TpcdTest, AnalyzeProducedStats) {
  const TableInfo* li = db_->catalog()->Get("lineitem").value();
  EXPECT_TRUE(li->stats.analyzed);
  const ColumnStats* ship = li->stats.Find("l_shipdate");
  ASSERT_NE(ship, nullptr);
  EXPECT_TRUE(ship->has_histogram());
  EXPECT_GT(ship->distinct, 100);
}

TEST_F(TpcdTest, NationRegionMapping) {
  EXPECT_STREQ(tpcd::NationName(6), "FRANCE");
  EXPECT_STREQ(tpcd::NationName(7), "GERMANY");
  EXPECT_STREQ(tpcd::RegionName(tpcd::NationRegion(6)), "EUROPE");
  EXPECT_STREQ(tpcd::RegionName(2), "ASIA");
  EXPECT_EQ(tpcd::PartTypeName(0), "STANDARD ANODIZED TIN");
}

TEST_F(TpcdTest, PartTypeDomainHas150Values) {
  std::set<std::string> types;
  for (int i = 0; i < 150; ++i) types.insert(tpcd::PartTypeName(i));
  EXPECT_EQ(types.size(), 150u);
  EXPECT_TRUE(types.count("ECONOMY ANODIZED STEEL"));
}

class TpcdQueryTest : public TpcdTest,
                      public ::testing::WithParamInterface<int> {};

TEST_P(TpcdQueryTest, ParsesBindsAndRunsIdenticallyAcrossModes) {
  tpcd::TpcdQuery q = tpcd::AllQueries()[GetParam()];
  ReoptOptions off;
  off.mode = ReoptMode::kOff;
  Result<QueryResult> normal = db_->ExecuteWith(q.sql, off);
  ASSERT_TRUE(normal.ok()) << q.name << ": " << normal.status().ToString();

  ReoptOptions full;
  full.mode = ReoptMode::kFull;
  Result<QueryResult> reopt = db_->ExecuteWith(q.sql, full);
  ASSERT_TRUE(reopt.ok()) << q.name << ": " << reopt.status().ToString();

  EXPECT_EQ(Canon(normal.value().rows), Canon(reopt.value().rows)) << q.name;
  EXPECT_GT(normal.value().report.sim_time_ms, 0);
}

INSTANTIATE_TEST_SUITE_P(AllSeven, TpcdQueryTest,
                         ::testing::Range(0, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(
                               tpcd::AllQueries()[info.param].name);
                         });

TEST(TpcdSkewTest, ZipfSkewsNationDistribution) {
  DatabaseOptions opts;
  opts.buffer_pool_pages = 256;
  Database uniform_db(opts), skewed_db(opts);
  tpcd::TpcdOptions u;
  u.scale_factor = 0.002;
  u.zipf_z = 0.0;
  tpcd::TpcdOptions s;
  s.scale_factor = 0.002;
  s.zipf_z = 0.6;
  ASSERT_TRUE(tpcd::Load(&uniform_db, u).ok());
  ASSERT_TRUE(tpcd::Load(&skewed_db, s).ok());

  auto max_nation_count = [](Database* db) {
    Result<QueryResult> r = db->Execute(
        "SELECT c_nationkey, COUNT(*) AS c FROM customer "
        "GROUP BY c_nationkey ORDER BY c DESC LIMIT 1");
    EXPECT_TRUE(r.ok());
    return r.value().rows[0].at(1).AsInt();
  };
  EXPECT_GT(max_nation_count(&skewed_db), max_nation_count(&uniform_db) * 2);
}

TEST(TpcdQueriesTest, ClassificationMatchesPaper) {
  auto queries = tpcd::AllQueries();
  std::map<std::string, tpcd::QueryClass> cls;
  for (const auto& q : queries) cls[q.name] = q.cls;
  EXPECT_EQ(cls["Q1"], tpcd::QueryClass::kSimple);
  EXPECT_EQ(cls["Q6"], tpcd::QueryClass::kSimple);
  EXPECT_EQ(cls["Q3"], tpcd::QueryClass::kMedium);
  EXPECT_EQ(cls["Q10"], tpcd::QueryClass::kMedium);
  EXPECT_EQ(cls["Q5"], tpcd::QueryClass::kComplex);
  EXPECT_EQ(cls["Q7"], tpcd::QueryClass::kComplex);
  EXPECT_EQ(cls["Q8"], tpcd::QueryClass::kComplex);
}

}  // namespace
}  // namespace reoptdb
