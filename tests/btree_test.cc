// Tests for the paged B+-tree.

#include <map>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/btree.h"

namespace reoptdb {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : pool_(&disk_, 64) {}
  DiskManager disk_;
  BufferPool pool_;
};

std::vector<std::pair<int64_t, Rid>> Drain(BTree::Iterator it) {
  std::vector<std::pair<int64_t, Rid>> out;
  int64_t k;
  Rid rid;
  while (true) {
    Result<bool> more = it.Next(&k, &rid);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !more.value()) break;
    out.emplace_back(k, rid);
  }
  return out;
}

TEST_F(BTreeTest, EmptyTree) {
  Result<BTree> tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->height(), 1);
  EXPECT_EQ(tree->entry_count(), 0u);
  Result<BTree::Iterator> it = tree->SeekAtLeast(0);
  ASSERT_TRUE(it.ok());
  EXPECT_TRUE(Drain(std::move(it.value())).empty());
}

TEST_F(BTreeTest, InsertAndLookup) {
  Result<BTree> tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (int64_t k = 0; k < 100; ++k)
    ASSERT_TRUE(tree->Insert(k, Rid{static_cast<uint32_t>(k), 0}).ok());
  std::vector<Rid> rids;
  ASSERT_TRUE(tree->Lookup(42, &rids).ok());
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0].page_ordinal, 42u);
  rids.clear();
  ASSERT_TRUE(tree->Lookup(1000, &rids).ok());
  EXPECT_TRUE(rids.empty());
}

TEST_F(BTreeTest, Duplicates) {
  Result<BTree> tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (uint32_t i = 0; i < 50; ++i)
    ASSERT_TRUE(tree->Insert(7, Rid{i, i}).ok());
  ASSERT_TRUE(tree->Insert(6, Rid{0, 0}).ok());
  ASSERT_TRUE(tree->Insert(8, Rid{0, 0}).ok());
  std::vector<Rid> rids;
  ASSERT_TRUE(tree->Lookup(7, &rids).ok());
  EXPECT_EQ(rids.size(), 50u);
}

TEST_F(BTreeTest, RangeScan) {
  Result<BTree> tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (int64_t k = 0; k < 1000; k += 2)  // even keys
    ASSERT_TRUE(tree->Insert(k, Rid{static_cast<uint32_t>(k), 0}).ok());
  Result<BTree::Iterator> it = tree->SeekRange(101, 199);
  ASSERT_TRUE(it.ok());
  auto entries = Drain(std::move(it.value()));
  ASSERT_EQ(entries.size(), 49u);  // 102..198 even
  EXPECT_EQ(entries.front().first, 102);
  EXPECT_EQ(entries.back().first, 198);
}

TEST_F(BTreeTest, SplitsGrowHeight) {
  Result<BTree> tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  const int n = 20000;
  for (int64_t k = 0; k < n; ++k)
    ASSERT_TRUE(tree->Insert(k, Rid{static_cast<uint32_t>(k), 0}).ok());
  EXPECT_GE(tree->height(), 2);
  EXPECT_EQ(tree->entry_count(), static_cast<uint64_t>(n));
  EXPECT_GT(tree->node_count(), 1u);
  // Full scan returns sorted keys.
  Result<BTree::Iterator> it = tree->SeekAtLeast(INT64_MIN);
  ASSERT_TRUE(it.ok());
  auto entries = Drain(std::move(it.value()));
  ASSERT_EQ(entries.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(entries[i].first, i);
}

TEST_F(BTreeTest, NegativeKeys) {
  Result<BTree> tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (int64_t k = -100; k <= 100; ++k)
    ASSERT_TRUE(tree->Insert(k, Rid{0, 0}).ok());
  Result<BTree::Iterator> it = tree->SeekRange(-50, -40);
  ASSERT_TRUE(it.ok());
  auto entries = Drain(std::move(it.value()));
  EXPECT_EQ(entries.size(), 11u);
  EXPECT_EQ(entries.front().first, -50);
}

// Property test: random inserts match a std::multimap reference on random
// range queries.
class BTreePropertyTest : public BTreeTest,
                          public ::testing::WithParamInterface<uint64_t> {};

TEST_P(BTreePropertyTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  Result<BTree> tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  std::multimap<int64_t, Rid> ref;

  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    int64_t key = rng.NextInt(0, 500);  // plenty of duplicates
    Rid rid{static_cast<uint32_t>(i), static_cast<uint32_t>(i % 7)};
    ASSERT_TRUE(tree->Insert(key, rid).ok());
    ref.emplace(key, rid);
  }
  EXPECT_EQ(tree->entry_count(), static_cast<uint64_t>(n));

  for (int q = 0; q < 50; ++q) {
    int64_t lo = rng.NextInt(0, 500);
    int64_t hi = lo + rng.NextInt(0, 100);
    Result<BTree::Iterator> it = tree->SeekRange(lo, hi);
    ASSERT_TRUE(it.ok());
    auto got = Drain(std::move(it.value()));
    size_t expected = 0;
    for (auto mit = ref.lower_bound(lo);
         mit != ref.end() && mit->first <= hi; ++mit)
      ++expected;
    EXPECT_EQ(got.size(), expected) << "range [" << lo << "," << hi << "]";
    // Keys are non-decreasing.
    for (size_t i = 1; i < got.size(); ++i)
      EXPECT_LE(got[i - 1].first, got[i].first);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST_F(BTreeTest, ProbesUseBufferPool) {
  Result<BTree> tree = BTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (int64_t k = 0; k < 10000; ++k)
    ASSERT_TRUE(tree->Insert(k, Rid{0, 0}).ok());
  // Repeated lookups of the same key should be nearly free after warm-up.
  std::vector<Rid> rids;
  ASSERT_TRUE(tree->Lookup(5000, &rids).ok());
  uint64_t reads = disk_.stats().page_reads;
  for (int i = 0; i < 100; ++i) {
    rids.clear();
    ASSERT_TRUE(tree->Lookup(5000, &rids).ok());
  }
  EXPECT_EQ(disk_.stats().page_reads, reads);  // all hits
}

}  // namespace
}  // namespace reoptdb
