// Incremental re-optimization benchmark (PR 8).
//
// Measures Optimizer::RepairPlan against a from-scratch Optimizer::Plan on
// 8-10 table star and chain joins after perturbing the statistics of one or
// two tables — the situation a mid-query re-optimization point is in: most
// of the DP search space is untouched, only the subsets containing a
// changed leaf need repair. Every repaired plan is asserted bit-identical
// (rendered plan text and root cost) to the from-scratch re-plan; the
// benchmark then reports wall-clock speedups and fails unless the geometric
// mean is at least 5x. Emits BENCH_pr8.json.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_memo.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace reoptdb {
namespace {

double WallMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Shape {
  const char* name;
  int tables = 0;
  bool star = false;  // false = chain
  int perturbed = 1;  // tables whose stats change before the re-plan
};

struct BenchRow {
  std::string name;
  int tables = 0;
  int perturbed = 0;
  double scratch_ms = 0;       // mean from-scratch Plan() wall ms
  double repair_ms = 0;        // mean RepairPlan() wall ms
  double speedup = 0;
  uint64_t scratch_offers = 0;
  uint64_t repair_offers = 0;
  uint64_t entries_reused = 0;
  uint64_t entries_invalidated = 0;
  bool identical = false;
};

Status MakeTable(Catalog* catalog, const std::string& name, int cols,
                 double rows, double distinct_frac) {
  Schema schema;
  for (int c = 0; c < cols; ++c)
    schema.AddColumn(
        Column{"", "c" + std::to_string(c), ValueType::kInt64, 8});
  RETURN_IF_ERROR(catalog->CreateTable(name, schema).status());
  TableStats ts;
  ts.analyzed = true;
  ts.row_count = rows;
  ts.avg_tuple_bytes = cols * 8.0;
  ts.page_count = std::max(1.0, rows * ts.avg_tuple_bytes / 4096.0);
  for (int c = 0; c < cols; ++c) {
    ColumnStats cs;
    cs.type = ValueType::kInt64;
    cs.has_bounds = true;
    cs.min = 0;
    cs.max = rows;
    cs.distinct = std::max(1.0, rows * distinct_frac);
    ts.columns["c" + std::to_string(c)] = cs;
  }
  return catalog->SetStats(name, std::move(ts));
}

QuerySpec MakeSpec(const Shape& shape) {
  QuerySpec spec;
  for (int t = 0; t < shape.tables; ++t) {
    std::string name = "t" + std::to_string(t);
    spec.relations.push_back(RelationRef{name, name});
  }
  for (int t = 1; t < shape.tables; ++t) {
    JoinPred j;
    j.left_rel = shape.star ? 0 : t - 1;
    j.left_col = shape.star ? "c" + std::to_string(t) : "c1";
    j.right_rel = t;
    j.right_col = "c0";
    spec.joins.push_back(j);
  }
  FilterPred f;  // a selective filter so leaves differ from raw tables
  f.rel = shape.tables - 1;
  f.column = "c2";
  f.op = CmpOp::kLt;
  f.literal = Value(int64_t{5000});
  spec.filters.push_back(f);
  OutputItem item;
  item.col = ColumnId{0, "c0", ValueType::kInt64};
  item.name = "c0";
  spec.items.push_back(item);
  return spec;
}

/// Perturbs table t<idx>'s statistics (growth + distinct-count shift),
/// exactly what ANALYZE after DML or harvested feedback would change.
Status Perturb(Catalog* catalog, int idx, double factor) {
  std::string name = "t" + std::to_string(idx);
  Result<TableInfo*> info = catalog->Get(name);
  RETURN_IF_ERROR(info.status());
  TableStats ts = info.value()->stats;
  ts.row_count *= factor;
  ts.page_count *= factor;
  for (auto& [col, cs] : ts.columns) {
    cs.max *= factor;
    cs.distinct = std::max(1.0, cs.distinct * factor);
  }
  return catalog->SetStats(name, std::move(ts));
}

Result<BenchRow> RunShape(const Shape& shape, int iters) {
  DiskManager disk;
  BufferPool pool(&disk, 64);
  Catalog catalog(&pool);
  for (int t = 0; t < shape.tables; ++t) {
    // Varied sizes so plan choice is non-trivial.
    double rows = 10000.0 * (1 + (t * 7) % 5);
    RETURN_IF_ERROR(MakeTable(&catalog, "t" + std::to_string(t), 4, rows,
                              t % 2 ? 0.1 : 0.01));
  }

  CostModel cost{CostParams{}};
  Optimizer optimizer(&catalog, &cost);
  QuerySpec spec = MakeSpec(shape);

  // Initial optimization: the memo a running query would retain.
  ASSIGN_OR_RETURN(OptimizeResult initial, optimizer.Plan(spec));

  // Mid-query statistics change on the last `perturbed` tables (peripheral
  // relations; the hub of a star dirties everything and is re-planned from
  // scratch anyway).
  for (int p = 0; p < shape.perturbed; ++p)
    RETURN_IF_ERROR(Perturb(&catalog, shape.tables - 1 - p, 2.25));

  BenchRow row;
  row.name = shape.name;
  row.tables = shape.tables;
  row.perturbed = shape.perturbed;
  row.identical = true;

  // Warm-up + identity check (untimed).
  ASSIGN_OR_RETURN(OptimizeResult scratch0, optimizer.Plan(spec));
  {
    MemoRepair mr;
    ASSIGN_OR_RETURN(
        OptimizeResult repaired,
        optimizer.RepairPlan(spec, nullptr, initial.memo->Clone(), &mr));
    if (mr.fell_back) {
      std::fprintf(stderr, "%s: repair unexpectedly fell back\n", shape.name);
      row.identical = false;
    }
    if (repaired.plan->ToString() != scratch0.plan->ToString() ||
        repaired.plan->est.cost_total_ms != scratch0.plan->est.cost_total_ms) {
      std::fprintf(stderr, "%s: repair/scratch plans DIFFER\nrepair:\n%s\n"
                   "scratch:\n%s\n",
                   shape.name, repaired.plan->ToString().c_str(),
                   scratch0.plan->ToString().c_str());
      row.identical = false;
    }
    row.scratch_offers = scratch0.plans_enumerated;
    row.repair_offers = repaired.plans_enumerated;
    row.entries_reused = mr.entries_reused;
    row.entries_invalidated = mr.entries_invalidated;
  }

  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    ASSIGN_OR_RETURN(OptimizeResult scratch, optimizer.Plan(spec));
    row.scratch_ms += WallMs(t0);

    std::unique_ptr<PlanMemo> memo = initial.memo->Clone();  // untimed
    const auto t1 = std::chrono::steady_clock::now();
    ASSIGN_OR_RETURN(OptimizeResult repaired,
                     optimizer.RepairPlan(spec, nullptr, std::move(memo)));
    row.repair_ms += WallMs(t1);
    if (repaired.plan->ToString() != scratch.plan->ToString())
      row.identical = false;
  }
  row.scratch_ms /= iters;
  row.repair_ms /= iters;
  row.speedup = row.scratch_ms / std::max(1e-9, row.repair_ms);
  return row;
}

}  // namespace
}  // namespace reoptdb

int main(int argc, char** argv) {
  using namespace reoptdb;
  int iters = 30;
  double min_geomean = 5.0;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--iters") && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--min-speedup") && i + 1 < argc) {
      min_geomean = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: memo_bench [--iters N] [--min-speedup X] "
                   "[--json PATH]\n");
      return 2;
    }
  }

  const Shape shapes[] = {
      {"star8_1changed", 8, true, 1},   {"chain8_1changed", 8, false, 1},
      {"star9_1changed", 9, true, 1},   {"chain9_1changed", 9, false, 1},
      {"star10_1changed", 10, true, 1}, {"chain10_1changed", 10, false, 1},
      {"star10_2changed", 10, true, 2}, {"chain10_2changed", 10, false, 2},
  };

  std::vector<BenchRow> rows;
  bool ok = true;
  for (const Shape& s : shapes) {
    Result<BenchRow> row = RunShape(s, iters);
    if (!row.ok()) {
      std::fprintf(stderr, "%s: %s\n", s.name,
                   row.status().ToString().c_str());
      ok = false;
      continue;
    }
    ok = ok && row->identical;
    std::printf(
        "%-17s scratch=%8.3fms (%6llu offers)  repair=%8.3fms (%6llu "
        "offers, %llu reused/%llu invalidated)  speedup=%5.2fx  %s\n",
        row->name.c_str(), row->scratch_ms,
        static_cast<unsigned long long>(row->scratch_offers), row->repair_ms,
        static_cast<unsigned long long>(row->repair_offers),
        static_cast<unsigned long long>(row->entries_reused),
        static_cast<unsigned long long>(row->entries_invalidated),
        row->speedup, row->identical ? "identical" : "MISMATCH");
    rows.push_back(std::move(*row));
  }

  double log_sum = 0;
  for (const BenchRow& r : rows) log_sum += std::log(std::max(1e-9, r.speedup));
  const double geomean =
      rows.empty() ? 0 : std::exp(log_sum / static_cast<double>(rows.size()));
  std::printf("geomean speedup: %.2fx (floor %.1fx)\n", geomean, min_geomean);
  if (geomean < min_geomean) ok = false;

  if (json_path) {
    std::FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 2;
    }
    std::fprintf(f, "{\n  \"iters\": %d,\n  \"geomean_speedup\": %.3f,\n"
                 "  \"shapes\": [",
                 iters, geomean);
    for (size_t i = 0; i < rows.size(); ++i) {
      const BenchRow& r = rows[i];
      std::fprintf(
          f,
          "%s\n    {\"name\": \"%s\", \"tables\": %d, \"perturbed\": %d, "
          "\"scratch_ms\": %.4f, \"repair_ms\": %.4f, \"speedup\": %.3f, "
          "\"scratch_offers\": %llu, \"repair_offers\": %llu, "
          "\"entries_reused\": %llu, \"entries_invalidated\": %llu, "
          "\"identical\": %s}",
          i ? "," : "", r.name.c_str(), r.tables, r.perturbed, r.scratch_ms,
          r.repair_ms, r.speedup,
          static_cast<unsigned long long>(r.scratch_offers),
          static_cast<unsigned long long>(r.repair_offers),
          static_cast<unsigned long long>(r.entries_reused),
          static_cast<unsigned long long>(r.entries_invalidated),
          r.identical ? "true" : "false");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

  std::printf(ok ? "memo-bench: PASS\n" : "memo-bench: FAIL\n");
  return ok ? 0 : 1;
}
