#include "types/value.h"

#include <cassert>
#include <cstring>
#include <sstream>

#include "common/rng.h"

namespace reoptdb {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  if (is_string() || other.is_string()) {
    assert(is_string() && other.is_string() &&
           "cannot compare string with numeric");
    return AsString().compare(other.AsString()) < 0
               ? -1
               : (AsString() == other.AsString() ? 0 : 1);
  }
  if (is_int() && other.is_int()) {
    int64_t a = AsInt(), b = other.AsInt();
    return a < b ? -1 : (a == b ? 0 : 1);
  }
  double a = AsNumeric(), b = other.AsNumeric();
  return a < b ? -1 : (a == b ? 0 : 1);
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kInt64:
      return SplitMix64(static_cast<uint64_t>(AsInt()));
    case ValueType::kDouble: {
      double d = AsDouble();
      // Hash integral doubles identically to the equivalent int so that
      // cross-type numeric equi-joins hash consistently.
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return SplitMix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return SplitMix64(bits);
    }
    case ValueType::kString: {
      // FNV-1a, finalized through SplitMix64.
      uint64_t h = 1469598103934665603ULL;
      for (char c : AsString()) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
      }
      return SplitMix64(h);
    }
  }
  return 0;
}

size_t Value::SerializedSize() const {
  switch (type()) {
    case ValueType::kInt64:
      return 1 + sizeof(int64_t);
    case ValueType::kDouble:
      return 1 + sizeof(double);
    case ValueType::kString:
      return 1 + sizeof(uint32_t) + AsString().size();
  }
  return 0;
}

void Value::SerializeTo(std::string* out) const {
  out->push_back(static_cast<char>(type()));
  switch (type()) {
    case ValueType::kInt64: {
      int64_t v = AsInt();
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case ValueType::kDouble: {
      double v = AsDouble();
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case ValueType::kString: {
      const std::string& s = AsString();
      uint32_t len = static_cast<uint32_t>(s.size());
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(s);
      break;
    }
  }
}

Result<Value> Value::Deserialize(const char* data, size_t size, size_t* offset) {
  if (*offset + 1 > size) return Status::Internal("value: truncated tag");
  uint8_t tag = static_cast<uint8_t>(data[*offset]);
  *offset += 1;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kInt64: {
      if (*offset + sizeof(int64_t) > size)
        return Status::Internal("value: truncated int");
      int64_t v;
      std::memcpy(&v, data + *offset, sizeof(v));
      *offset += sizeof(v);
      return Value(v);
    }
    case ValueType::kDouble: {
      if (*offset + sizeof(double) > size)
        return Status::Internal("value: truncated double");
      double v;
      std::memcpy(&v, data + *offset, sizeof(v));
      *offset += sizeof(v);
      return Value(v);
    }
    case ValueType::kString: {
      if (*offset + sizeof(uint32_t) > size)
        return Status::Internal("value: truncated string length");
      uint32_t len;
      std::memcpy(&len, data + *offset, sizeof(len));
      *offset += sizeof(len);
      if (*offset + len > size) return Status::Internal("value: truncated string");
      std::string s(data + *offset, len);
      *offset += len;
      return Value(std::move(s));
    }
    default:
      return Status::Internal("value: bad type tag");
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

}  // namespace reoptdb
