// Physical operator interface (Volcano-style iterator model).

#ifndef REOPTDB_EXEC_OPERATOR_H_
#define REOPTDB_EXEC_OPERATOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "exec/tuple_batch.h"
#include "plan/physical_plan.h"
#include "types/tuple.h"

namespace reoptdb {

/// \brief Base class of all physical operators.
///
/// Lifecycle: Open() (recursively opens children, performs no blocking
/// work) -> Next() / NextBatch() repeatedly -> Close(). Blocking operators
/// additionally expose EnsureBlockingPhase(), which the scheduler calls at
/// stage boundaries; Next() calls it implicitly, so operators also work
/// when pulled directly.
///
/// Tuples move either row-at-a-time (Next) or block-at-a-time (NextBatch).
/// The puller picks the interface and must stick with it for the
/// operator's lifetime: operators with native batch implementations buffer
/// input internally, so interleaving the two interfaces on one operator
/// would skip buffered rows. Both interfaces produce bit-identical row
/// streams and charge identical work totals to the ExecContext, so the
/// simulated clock — and every re-optimization decision derived from it —
/// is independent of the batch size.
///
/// The public entry points are non-virtual wrappers that record an
/// OperatorSpan (open/next/close sim-time, rows produced, page I/Os) into
/// the query's QueryTrace; subclasses implement OpenImpl/NextImpl/
/// CloseImpl/BlockingPhaseImpl, and optionally NextBatchImpl (the default
/// adapter loops NextImpl). Span times are inclusive of children — a
/// parent's Next() covers the child Next() calls it makes. Cancellation
/// and span bookkeeping run once per call on either interface, which is
/// what makes batched pulls cheap: one check per batch, not per row.
class Operator {
 public:
  Operator(ExecContext* ctx, PlanNode* node) : ctx_(ctx), node_(node) {}
  virtual ~Operator() = default;
  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  Status Open() {
    EnsureSpan();
    if (span_ != nullptr) span_->open_at_ms = ctx_->SimElapsedMs();
    return OpenImpl();
  }

  Result<bool> Next(Tuple* out) {
    // Cooperative cancellation: deep pipelines unwind from whatever
    // operator observes the flag first; Close/cleanup run on the way out.
    RETURN_IF_ERROR(ctx_->CheckCancelled());
    if (span_ == nullptr) return NextImpl(out);
    const bool timing = ctx_->trace()->operator_timing;
    double t0 = 0;
    uint64_t io0 = 0;
    if (timing) {
      t0 = ctx_->SimElapsedMs();
      io0 = ctx_->PageIos();
    }
    Result<bool> r = NextImpl(out);
    ++span_->next_calls;
    if (r.ok() && r.value()) ++span_->rows;
    if (timing) {
      span_->next_ms += ctx_->SimElapsedMs() - t0;
      span_->page_ios += ctx_->PageIos() - io0;
    }
    return r;
  }

  /// Fills `out` with up to out->capacity() tuples. Returns true iff any
  /// rows were produced; false means the stream is exhausted (and `out` is
  /// empty). A partial batch does not imply end-of-stream — callers loop
  /// until false. Cancellation/deadline is checked once per batch.
  Result<bool> NextBatch(TupleBatch* out) {
    RETURN_IF_ERROR(ctx_->CheckCancelled());
    out->Clear();
    if (span_ == nullptr) return NextBatchImpl(out);
    const bool timing = ctx_->trace()->operator_timing;
    double t0 = 0;
    uint64_t io0 = 0;
    if (timing) {
      t0 = ctx_->SimElapsedMs();
      io0 = ctx_->PageIos();
    }
    Result<bool> r = NextBatchImpl(out);
    ++span_->next_calls;
    if (r.ok()) span_->rows += out->size();
    if (timing) {
      span_->next_ms += ctx_->SimElapsedMs() - t0;
      span_->page_ios += ctx_->PageIos() - io0;
    }
    return r;
  }

  Status Close() {
    if (span_ != nullptr) span_->close_at_ms = ctx_->SimElapsedMs();
    return CloseImpl();
  }

  /// Runs the blocking phase (hash-join build, aggregate absorb, sort run
  /// formation, materialization). Idempotent. No-op for streaming ops.
  Status EnsureBlockingPhase() {
    RETURN_IF_ERROR(ctx_->CheckCancelled());
    if (span_ == nullptr) return BlockingPhaseImpl();
    const bool timing = ctx_->trace()->operator_timing;
    double t0 = 0;
    uint64_t io0 = 0;
    if (timing) {
      t0 = ctx_->SimElapsedMs();
      io0 = ctx_->PageIos();
    }
    Status st = BlockingPhaseImpl();
    if (timing) {
      span_->blocking_ms += ctx_->SimElapsedMs() - t0;
      span_->page_ios += ctx_->PageIos() - io0;
    }
    return st;
  }

  const Schema& OutputSchema() const { return node_->output_schema; }
  PlanNode* node() const { return node_; }
  ExecContext* ctx() const { return ctx_; }

  /// This operator's trace span (created on first Open()).
  const OperatorSpan* span() const { return span_; }

  const std::vector<std::unique_ptr<Operator>>& children() const {
    return children_;
  }
  Operator* child(size_t i) const { return children_[i].get(); }
  void AddChild(std::unique_ptr<Operator> op) {
    children_.push_back(std::move(op));
  }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextImpl(Tuple* out) = 0;
  virtual Status CloseImpl() = 0;
  virtual Status BlockingPhaseImpl() { return Status::OK(); }

  /// Default batch adapter: loops NextImpl into reused slots, so every
  /// operator works under batched pulls unmodified. NextImpl must be
  /// idempotent at end-of-stream (all operators are: their cursors stay at
  /// the end). Hot-path operators override this with native column-major /
  /// buffered implementations.
  virtual Result<bool> NextBatchImpl(TupleBatch* out) {
    while (!out->full()) {
      Tuple* slot = out->AddSlot();
      ASSIGN_OR_RETURN(bool more, NextImpl(slot));
      if (!more) {
        out->PopSlot();
        break;
      }
    }
    return !out->empty();
  }

  Status OpenChildren() {
    for (auto& c : children_) RETURN_IF_ERROR(c->Open());
    return Status::OK();
  }
  Status CloseChildren() {
    for (auto& c : children_) RETURN_IF_ERROR(c->Close());
    return Status::OK();
  }

  ExecContext* ctx_;
  PlanNode* node_;
  std::vector<std::unique_ptr<Operator>> children_;

 private:
  void EnsureSpan() {
    if (span_ != nullptr) return;
    span_ = ctx_->trace()->NewSpan();
    span_->plan_generation = ctx_->plan_generation();
    span_->node_id = node_->id;
    span_->op = OpKindName(node_->kind);
    if (!node_->table.empty()) {
      span_->detail = node_->table;
      if (!node_->alias.empty() && node_->alias != node_->table)
        span_->detail += " [" + node_->alias + "]";
    }
  }

  OperatorSpan* span_ = nullptr;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_OPERATOR_H_
