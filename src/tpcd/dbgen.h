// TPC-D-like data generator [21], scaled down (DESIGN.md §3).
//
// Produces the eight TPC-D tables with the standard row-count ratios at a
// configurable scale factor, optionally skewing non-key attributes with a
// generalized Zipfian distribution (z = 0.3 / 0.6 in the paper's Fig. 12).
// Dates are day numbers (0 = 1992-01-01, 2556 = 1998-12-31). Derived year
// columns (o_orderyear, l_shipyear) substitute for the YEAR() expressions
// the engine's SQL subset lacks.
//
// Deliberate correlations (footnote 2's error sources, built into data):
//  - l_shipdate/l_commitdate/l_receiptdate derive from o_orderdate;
//  - l_discount depends on l_quantity (high quantities earn discounts);
//  - l_returnflag/l_linestatus depend on the dates.

#ifndef REOPTDB_TPCD_DBGEN_H_
#define REOPTDB_TPCD_DBGEN_H_

#include <cstdint>
#include <string>

#include "engine/database.h"

namespace reoptdb {
namespace tpcd {

/// Date domain (day numbers).
inline constexpr int64_t kStartDate = 0;     // 1992-01-01
inline constexpr int64_t kEndDate = 2556;    // 1998-12-31
inline constexpr int64_t kCurrentDate = 2190;  // ~1998-06-01

/// Generator configuration.
struct TpcdOptions {
  double scale_factor = 0.01;  ///< 1.0 = the full TPC-D SF1 row counts
  double zipf_z = 0.0;         ///< skew on non-key attributes (0 = uniform)
  uint64_t seed = 42;
  bool build_indexes = true;
  bool analyze = true;
  AnalyzeOptions analyze_options;  ///< histogram kind/buckets for ANALYZE

  /// Update staleness (paper footnote 2: "histograms might be
  /// out-of-date"): after ANALYZE runs on the base load, this fraction of
  /// additional orders (with their lineitems) is inserted WITHOUT
  /// refreshing statistics. The new orders concentrate in
  /// [update_date_lo, update_date_hi], so date-range selectivities the
  /// optimizer derives from the stale catalog are genuinely wrong —
  /// exactly the error the Dynamic Re-Optimization experiments exercise.
  double update_fraction = 0;
  int64_t update_date_lo = 730;
  int64_t update_date_hi = 1700;
};

/// Row counts for a scale factor.
struct TpcdSizes {
  int64_t region = 5;
  int64_t nation = 25;
  int64_t supplier = 0;
  int64_t customer = 0;
  int64_t part = 0;
  int64_t partsupp = 0;
  int64_t orders = 0;
  /// lineitem count is data-dependent (1-7 lines per order, avg 4).
};

TpcdSizes SizesFor(double scale_factor);

/// Creates, loads, indexes and analyzes the TPC-D tables in `db`.
Status Load(Database* db, const TpcdOptions& opts);

/// The standard 25 nation names / 5 region names and the nation->region map.
const char* NationName(int64_t nationkey);
const char* RegionName(int64_t regionkey);
int64_t NationRegion(int64_t nationkey);

/// One of the 150 part types ("ECONOMY ANODIZED STEEL", ...).
std::string PartTypeName(int64_t index);

/// One of the 5 market segments.
const char* MktSegmentName(int64_t index);

}  // namespace tpcd
}  // namespace reoptdb

#endif  // REOPTDB_TPCD_DBGEN_H_
