// K-way replica placement and failover for the simulated cluster
// (DESIGN.md §16).
//
// Every partition slice (one append ordinal of one sharded table) lives on
// k distinct nodes: the primary copy in the partition table queries scan,
// plus k-1 replica copies in per-node `__replica_<table>` heaps that the
// executor never reads. The ReplicaManager owns the replica directory
// (table -> per-ordinal replica owner lists) and the failover engine behind
// ShardCluster::RehomeDeadNode:
//
//   1. Promote — a slice whose primary died is re-pointed at a surviving
//      replica owner, which copies the rows from its replica heap into its
//      partition table. Local I/O only: zero coordinator reads.
//   2. Fall back — a slice whose every copy died is re-read from the
//      coordinator heap, the durable copy of last resort (the pre-replica
//      behavior, now the exception instead of the rule).
//   3. Re-establish — after promotion the slice is one copy short of k; a
//      new owner is picked among the survivors and the copy re-created,
//      charged as node-to-node transfer.
//
// At replication_factor 1 the manager is inert (no replica tables, no
// directory, no extra cost) and failover degenerates to the legacy
// coordinator re-read — bit-identical to the pre-replication cluster.

#ifndef REOPTDB_SHARD_REPLICA_MANAGER_H_
#define REOPTDB_SHARD_REPLICA_MANAGER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/query_trace.h"
#include "shard/shard_cluster.h"

namespace reoptdb {

/// \brief Replica directory + failover engine (owned by the ShardCluster).
class ReplicaManager {
 public:
  ReplicaManager(ShardCluster* cluster, int factor);

  /// Effective replication factor (clamped to [1, num_nodes]).
  int factor() const { return factor_; }

  /// Physical per-node table holding `table`'s replica rows.
  static std::string ReplicaTableName(const std::string& table) {
    return "__replica_" + table;
  }

  /// Places k-1 replica copies of every slice of `table`, reading the rows
  /// from the coordinator heap (charged) and appending them to the chosen
  /// owners' replica heaps. Owners are the next k-1 alive nodes after the
  /// primary in node-id order — distinct from the primary and from each
  /// other. Called by ShardCluster::Shard after primary routing; no-op at
  /// factor 1. Re-placing (re-shard) replaces the directory and tables.
  Status PlaceReplicas(const std::string& table);

  /// Replica owners of `ord` (primary excluded); empty at factor 1.
  std::vector<int> ReplicasOf(const std::string& table, uint64_t ord) const;

  /// Ordinals `node` is expected to hold for `table` in `role`
  /// ("primary" | "replica") — the scrubber's reference set.
  std::vector<uint64_t> ExpectedOrdinals(const std::string& table, int node,
                                         const std::string& role) const;

  /// Failover engine behind ShardCluster::RehomeDeadNode; see the header
  /// comment. `repairs` (optional) receives one aggregated record per
  /// rebuilt (node, role, source) for the query trace.
  Result<ShardCluster::RehomeResult> FailoverDeadNode(
      int dead, std::vector<ReplicaRepairRecord>* repairs);

  /// Copies of (`table`, `ord`) other than the one on (`skip_node` holding
  /// it as primary iff `skip_primary`): alive holders first. Each entry is
  /// (node, is_primary). The scrubber repairs from the first healthy one.
  std::vector<std::pair<int, bool>> OtherHolders(const std::string& table,
                                                 uint64_t ord, int skip_node,
                                                 bool skip_primary) const;

  /// Reads the rows of `table` whose trailing append ordinal is in `ords`
  /// from `node`'s copy (`from_replica` picks the replica heap) into
  /// `*out`, charging the node's disk. Rows keep the ordinal column.
  Status CollectRows(const std::string& table, int node, bool from_replica,
                     const std::set<uint64_t>& ords,
                     std::map<uint64_t, Tuple>* out) const;

  /// Same, from the coordinator heap (the rows gain the ordinal column).
  Status CollectCoordinatorRows(const std::string& table,
                                const std::set<uint64_t>& ords,
                                std::map<uint64_t, Tuple>* out) const;

 private:
  friend class Scrubber;

  ShardCluster* cluster_;
  int factor_;
  /// table -> replica owner node ids per append ordinal (primary excluded).
  std::map<std::string, std::vector<std::vector<int>>> dir_;
};

}  // namespace reoptdb

#endif  // REOPTDB_SHARD_REPLICA_MANAGER_H_
