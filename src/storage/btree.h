// Paged B+-tree index: int64 keys -> Rids, duplicates allowed.
//
// Entries are made unique by using (key, rid) as the composite sort key, the
// standard trick for secondary indexes with duplicate attribute values. All
// node accesses go through the buffer pool, so index probes cost real
// (simulated) I/O, with hot upper levels naturally cached.

#ifndef REOPTDB_STORAGE_BTREE_H_
#define REOPTDB_STORAGE_BTREE_H_

#include <cstdint>
#include <optional>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace reoptdb {

/// \brief B+-tree over (int64 key, Rid) composite entries.
class BTree {
 public:
  /// Creates an empty tree (allocates the root leaf).
  static Result<BTree> Create(BufferPool* pool);

  /// Inserts one entry.
  Status Insert(int64_t key, const Rid& rid);

  /// Tree height in levels (1 = root is a leaf).
  int height() const { return height_; }

  /// Number of entries.
  uint64_t entry_count() const { return entries_; }

  /// Number of pages used by the tree.
  uint64_t node_count() const { return nodes_; }

  /// \brief Forward cursor positioned by Seek*.
  class Iterator {
   public:
    /// Advances to the next entry; returns false at end.
    Result<bool> Next(int64_t* key, Rid* rid);

   private:
    friend class BTree;
    BufferPool* pool_ = nullptr;
    PageId leaf_ = kInvalidPageId;
    uint32_t pos_ = 0;
    bool bounded_ = false;
    int64_t hi_ = 0;  // inclusive upper bound when bounded_
  };

  /// Cursor at the first entry with key >= `lo`; unbounded above.
  Result<Iterator> SeekAtLeast(int64_t lo) const;

  /// Cursor over keys in [lo, hi] inclusive.
  Result<Iterator> SeekRange(int64_t lo, int64_t hi) const;

  /// Collects all rids whose key equals `key` (convenience for point probes).
  Status Lookup(int64_t key, std::vector<Rid>* out) const;

 private:
  explicit BTree(BufferPool* pool) : pool_(pool) {}

  struct SplitResult {
    int64_t sep_key;
    Rid sep_rid;
    PageId right;
  };

  Status InsertRec(PageId node, int64_t key, const Rid& rid,
                   std::optional<SplitResult>* split);
  Result<PageId> DescendToLeaf(int64_t key, const Rid& rid) const;

  BufferPool* pool_;
  PageId root_ = kInvalidPageId;
  int height_ = 1;
  uint64_t entries_ = 0;
  uint64_t nodes_ = 1;
};

}  // namespace reoptdb

#endif  // REOPTDB_STORAGE_BTREE_H_
