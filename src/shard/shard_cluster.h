// Simulated shared-nothing cluster (DESIGN.md §15).
//
// The cluster wraps one coordinator Database — which keeps the full copy of
// every base table and stays the bit-identical single-node oracle — plus N
// simulated worker nodes, each with its own DiskManager (private simulated
// I/O clock), BufferPool, and Catalog of partition tables. Shard() splits a
// loaded coordinator table across the nodes by hash or range, appending a
// per-row global ordinal column that the sharded executor later uses to
// reassemble single-node tuple order exactly.
//
// The coordinator's heap is treated as the durable, replicated copy of the
// data (think: a distributed file system); a node's partition is a cache of
// its slice. Losing a node therefore never loses rows — RehomeDeadNode
// re-reads the dead node's slice from the coordinator heap and re-appends
// it to the survivors, charging the simulated I/O honestly.

#ifndef REOPTDB_SHARD_SHARD_CLUSTER_H_
#define REOPTDB_SHARD_SHARD_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "exec/exchange_op.h"
#include "shard/skew_detector.h"

namespace reoptdb {

/// Cluster configuration.
struct ShardOptions {
  int num_nodes = 4;
  /// Per-node buffer pool (pages).
  size_t node_pool_pages = 512;
  /// Memory budget (pages) a node grants each fragment's hash join.
  double node_mem_pages = 128;
  /// Skew / straggler thresholds (see shard/skew_detector.h).
  SkewThresholds skew;
  /// Mid-query defenses on (distribution switches, straggler re-weighting).
  /// Off = the control arm: triggers are still *recorded*, never acted on.
  bool reopt_enabled = true;
  /// Per-node simulated slowdown multiplier (empty = all 1.0). A value of
  /// 3.0 makes that node's charged time 3x — the straggler scenario.
  std::vector<double> node_slowdown;
  /// Base options for the coordinator Database. The optimizer profile is
  /// overridden to hash-only left-deep plans (the shapes the sharded
  /// executor distributes); everything else is honored.
  DatabaseOptions coordinator;
};

/// One simulated worker node.
struct ShardNode {
  int id = 0;
  bool alive = true;
  /// Routing weight for hash repartitioning (lowered for stragglers).
  double weight = 1.0;
  double slowdown = 1.0;
  std::unique_ptr<DiskManager> disk;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<Catalog> catalog;
  /// Cumulative exchange counters (across queries).
  NetChannelStats net;
};

/// \brief Coordinator + N simulated worker nodes.
class ShardCluster {
 public:
  explicit ShardCluster(ShardOptions opts = ShardOptions{});

  Database* db() { return db_.get(); }
  const ShardOptions& options() const { return opts_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  ShardNode* node(int id) { return nodes_[static_cast<size_t>(id)].get(); }
  const ShardNode* node(int id) const {
    return nodes_[static_cast<size_t>(id)].get();
  }
  std::vector<int> AliveNodes() const;
  /// The coordinator's injector, shared by every node's disk and the
  /// exchange channels — one schedule drives the whole cluster.
  FaultInjector* faults() { return db_->faults(); }

  /// Qualifier/name of the ordinal column appended to partition tables.
  static constexpr char kOrdQualifier[] = "__shard";
  static std::string OrdColumnName(const std::string& table) {
    return "__ord_" + table;
  }

  /// Partitions a loaded coordinator table across all nodes: creates the
  /// per-node partition tables (same name, schema + trailing ordinal
  /// column), routes every coordinator row by `p`, and records the
  /// partitioning in the coordinator catalog. Re-sharding an already
  /// sharded table replaces its partitions.
  Status Shard(const std::string& table, TablePartitioning p);
  Status ShardByHash(const std::string& table, const std::string& column) {
    TablePartitioning p;
    p.kind = TablePartitioning::Kind::kHash;
    p.column = column;
    p.num_shards = num_nodes();
    return Shard(table, std::move(p));
  }

  // --- Node failure.

  /// Marks a node dead. Its partitions stay on its (lost) disk; call
  /// RehomeDeadNode to rebuild them on the survivors.
  Status MarkDead(int id);

  struct RehomeResult {
    uint64_t rehomed_rows = 0;
    /// Simulated cost: coordinator re-read + the survivors' appends
    /// (max over nodes, since they write in parallel).
    double sim_ms = 0;
  };

  /// Re-appends every row the dead node held (re-read from the coordinator
  /// heap, the durable copy) onto the surviving nodes' partition tables,
  /// round-robin by ordinal. Updates the routing directory so subsequent
  /// queries and stage re-runs see the new layout.
  Result<RehomeResult> RehomeDeadNode(int dead);

  /// Node currently holding append ordinal `ord` of `table` (-1 unknown).
  int RouteOf(const std::string& table, uint64_t ord) const;

  // --- Makespan accounting (simulated wall-clock across the cluster).

  void AddClusterMs(double ms) { cluster_ms_ += ms; }
  double cluster_ms() const { return cluster_ms_; }

  /// Pages still allocated across every *alive* disk plus the coordinator
  /// (leak check; a dead node's disk is lost hardware and not counted).
  size_t LivePagesAliveNodes() const;

 private:
  friend class ShardedExecutor;

  ShardOptions opts_;
  std::unique_ptr<Database> db_;
  std::vector<std::unique_ptr<ShardNode>> nodes_;
  /// Partition directory: table -> owning node id per append ordinal.
  std::map<std::string, std::vector<int>> routes_;
  double cluster_ms_ = 0;
};

}  // namespace reoptdb

#endif  // REOPTDB_SHARD_SHARD_CLUSTER_H_
