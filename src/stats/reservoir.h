// Vitter's reservoir sampling, Algorithm R [24].
//
// The statistics-collector operator keeps one page worth of sample values
// and builds run-time histograms from it, exactly as the paper's Paradise
// implementation does (Section 3.1).

#ifndef REOPTDB_STATS_RESERVOIR_H_
#define REOPTDB_STATS_RESERVOIR_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace reoptdb {

/// \brief Uniform random sample of fixed capacity over a stream.
template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {
    // Reserve lazily beyond a page's worth: ANALYZE without sampling sets
    // capacity = row count, and an eager full reservation per column would
    // spike memory on large tables before a single row is offered.
    sample_.reserve(std::min<size_t>(capacity, 4096));
  }

  /// Offers one stream element.
  void Add(const T& value) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(value);
      return;
    }
    // Replace a random slot with probability capacity/seen (Algorithm R).
    uint64_t j = rng_.NextBelow(seen_);
    if (j < capacity_) sample_[j] = value;
  }

  uint64_t seen() const { return seen_; }
  const std::vector<T>& sample() const { return sample_; }

 private:
  size_t capacity_;
  Rng rng_;
  uint64_t seen_ = 0;
  std::vector<T> sample_;
};

}  // namespace reoptdb

#endif  // REOPTDB_STATS_RESERVOIR_H_
