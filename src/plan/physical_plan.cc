#include "plan/physical_plan.h"

#include <sstream>

namespace reoptdb {

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kSeqScan:
      return "SeqScan";
    case OpKind::kIndexScan:
      return "IndexScan";
    case OpKind::kFilter:
      return "Filter";
    case OpKind::kProject:
      return "Project";
    case OpKind::kHashJoin:
      return "HashJoin";
    case OpKind::kMergeJoin:
      return "MergeJoin";
    case OpKind::kIndexNLJoin:
      return "IndexNLJoin";
    case OpKind::kHashAggregate:
      return "HashAggregate";
    case OpKind::kSort:
      return "Sort";
    case OpKind::kMaterialize:
      return "Materialize";
    case OpKind::kStatsCollector:
      return "StatsCollector";
    case OpKind::kLimit:
      return "Limit";
    case OpKind::kExchange:
      return "Exchange";
  }
  return "?";
}

std::string ScalarPred::ToString() const {
  std::ostringstream os;
  os << column << " " << CmpOpName(op) << " "
     << (rhs_is_column ? rhs_column : literal.ToString());
  return os.str();
}

std::string PlanNode::ToString(int indent) const {
  std::ostringstream os;
  std::string pad(indent * 2, ' ');
  os << pad << OpKindName(kind);
  switch (kind) {
    case OpKind::kSeqScan:
    case OpKind::kIndexScan:
      os << " " << table;
      if (alias != table) os << " AS " << alias;
      if (kind == OpKind::kIndexScan) {
        os << " USING " << index_column;
        if (range_lo) os << " lo=" << *range_lo;
        if (range_hi) os << " hi=" << *range_hi;
      }
      break;
    case OpKind::kIndexNLJoin:
      os << " inner=" << table << " AS " << alias << "." << index_column;
      break;
    case OpKind::kMergeJoin:
    case OpKind::kHashJoin: {
      os << " ";
      for (size_t i = 0; i < left_keys.size(); ++i) {
        if (i) os << ", ";
        os << left_keys[i] << "=" << right_keys[i];
      }
      break;
    }
    case OpKind::kHashAggregate: {
      os << " groups=(";
      for (size_t i = 0; i < group_cols.size(); ++i) {
        if (i) os << ",";
        os << group_cols[i];
      }
      os << ")";
      break;
    }
    case OpKind::kExchange:
      os << " " << table;
      break;
    case OpKind::kStatsCollector: {
      os << " [hist:";
      for (const auto& c : collector.histogram_cols) os << " " << c;
      os << "; uniq:";
      for (const auto& c : collector.unique_cols) os << " " << c;
      os << "]";
      break;
    }
    default:
      break;
  }
  if (!filters.empty()) {
    os << " where";
    for (const auto& f : filters) os << " (" << f.ToString() << ")";
  }
  os << "  {rows=" << est.cardinality << " pages=" << est.pages
     << " cost=" << est.cost_total_ms << "ms";
  if (IsMemoryConsumer()) {
    os << " mem=" << mem_budget_pages << "/[" << min_mem_pages << ","
       << max_mem_pages << "]pg";
  }
  if (observed.valid) os << " observed_rows=" << observed.cardinality;
  os << "}\n";
  for (const auto& c : children) os << c->ToString(indent + 1);
  return os.str();
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto n = std::make_unique<PlanNode>();
  *n = PlanNode{};  // ensure defaults
  n->kind = kind;
  n->id = id;
  n->output_schema = output_schema;
  n->covers = covers;
  n->table = table;
  n->alias = alias;
  n->filters = filters;
  n->index_column = index_column;
  n->range_lo = range_lo;
  n->range_hi = range_hi;
  n->left_keys = left_keys;
  n->right_keys = right_keys;
  n->group_cols = group_cols;
  n->aggs = aggs;
  n->project_cols = project_cols;
  n->project_names = project_names;
  n->sort_keys = sort_keys;
  n->limit = limit;
  n->collector = collector;
  n->est = est;
  n->improved = improved;
  n->min_mem_pages = min_mem_pages;
  n->max_mem_pages = max_mem_pages;
  n->mem_budget_pages = mem_budget_pages;
  for (const auto& c : children) n->children.push_back(c->Clone());
  return n;
}

PlanNode* PlanNode::Find(int node_id) {
  if (id == node_id) return this;
  for (auto& c : children) {
    PlanNode* f = c->Find(node_id);
    if (f) return f;
  }
  return nullptr;
}

}  // namespace reoptdb
