# Empty dependencies file for reopt_test.
# This may be replaced when dependencies are built.
