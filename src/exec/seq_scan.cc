#include "exec/seq_scan.h"

namespace reoptdb {

Status SeqScanOp::OpenImpl() {
  ASSIGN_OR_RETURN(const TableInfo* info, ctx_->catalog()->Get(node_->table));
  heap_ = info->heap.get();
  it_.emplace(heap_->Scan());
  ASSIGN_OR_RETURN(preds_, CompilePreds(node_->filters, node_->output_schema));
  return Status::OK();
}

Result<bool> SeqScanOp::NextImpl(Tuple* out) {
  while (true) {
    ASSIGN_OR_RETURN(bool more, it_->Next(out));
    if (!more) return false;
    ctx_->ChargeTuples(1);
    if (EvalAll(preds_, *out)) return true;
  }
}

Status SeqScanOp::CloseImpl() {
  it_.reset();
  return Status::OK();
}

}  // namespace reoptdb
