// Physical operator interface (Volcano-style iterator model).

#ifndef REOPTDB_EXEC_OPERATOR_H_
#define REOPTDB_EXEC_OPERATOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "plan/physical_plan.h"
#include "types/tuple.h"

namespace reoptdb {

/// \brief Base class of all physical operators.
///
/// Lifecycle: Open() (recursively opens children, performs no blocking
/// work) -> Next() repeatedly -> Close(). Blocking operators additionally
/// expose EnsureBlockingPhase(), which the scheduler calls at stage
/// boundaries; Next() calls it implicitly, so operators also work when
/// pulled directly.
class Operator {
 public:
  Operator(ExecContext* ctx, PlanNode* node) : ctx_(ctx), node_(node) {}
  virtual ~Operator() = default;
  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  virtual Status Open() = 0;
  virtual Result<bool> Next(Tuple* out) = 0;
  virtual Status Close() = 0;

  /// Runs the blocking phase (hash-join build, aggregate absorb, sort run
  /// formation, materialization). Idempotent. No-op for streaming ops.
  virtual Status EnsureBlockingPhase() { return Status::OK(); }

  const Schema& OutputSchema() const { return node_->output_schema; }
  PlanNode* node() const { return node_; }
  ExecContext* ctx() const { return ctx_; }

  const std::vector<std::unique_ptr<Operator>>& children() const {
    return children_;
  }
  Operator* child(size_t i) const { return children_[i].get(); }
  void AddChild(std::unique_ptr<Operator> op) {
    children_.push_back(std::move(op));
  }

 protected:
  Status OpenChildren() {
    for (auto& c : children_) RETURN_IF_ERROR(c->Open());
    return Status::OK();
  }
  Status CloseChildren() {
    for (auto& c : children_) RETURN_IF_ERROR(c->Close());
    return Status::OK();
  }

  ExecContext* ctx_;
  PlanNode* node_;
  std::vector<std::unique_ptr<Operator>> children_;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_OPERATOR_H_
