#!/usr/bin/env bash
# Tier-1 verification: full build + full test suite, then a sanitizer pass
# (ASan + UBSan) over the fault-injection and re-optimization tests, which
# exercise the error/rollback paths most likely to hide lifetime bugs.
#
#   tools/run_tier1.sh [build-dir] [asan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
ASAN_BUILD="${2:-build-asan}"

echo "== tier-1: configure + build (${BUILD}) =="
cmake -B "${BUILD}" -S . >/dev/null
cmake --build "${BUILD}" -j

echo "== tier-1: full test suite =="
ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)"

echo "== tier-1: workload overload harness (release, emits BENCH_pr5.json) =="
# Seeded concurrent TPC-D mixes at 1x/4x/16x load over a budget sized for
# ~4 queries; exits nonzero on any solo-run mismatch, untyped failure, or
# broker/temp-table/page leak. Simulated time, so the JSON is reproducible.
"${BUILD}/tools/workload_runner" --seed 42 --out BENCH_pr5.json

echo "== tier-1: repeated-workload feedback harness (release, emits BENCH_pr6.json) =="
# The same seeded TPC-D mix for 3 waves against one feedback+plan-cache
# database over a stale catalog; exits nonzero unless every wave's rows are
# bit-identical to a no-feedback control and the wave-2+ re-opt count and
# sim time are strictly below wave 1 (monotone non-increasing after that).
"${BUILD}/tools/repeat_runner" --seed 42 --out BENCH_pr6.json

echo "== tier-1: DML mid-transaction chaos sweep (release, emits BENCH_pr7.json) =="
# >=100 seeded crash schedules (mid-statement, mid-commit, mid-replay) over
# serial transaction scripts, each diffed against a crash-free serial
# oracle; exits nonzero on any lost commit, visible uncommitted write,
# state mismatch, dangling transaction, undrained WAL, or page leak. Also
# benchmarks commit throughput and recovery-replay time at 1x/4x writers.
"${BUILD}/tools/dml_chaos_runner" --seed 42 --schedules 120 --json BENCH_pr7.json

echo "== tier-1: incremental re-optimization bench (release, emits BENCH_pr8.json) =="
# 8-10 table star/chain joins with 1-2 perturbed tables: RepairPlan on the
# retained memo vs a from-scratch Plan. Exits nonzero unless every repaired
# plan is bit-identical (rendered plan + root cost) to the scratch re-plan
# and the geometric-mean speedup clears 5x.
"${BUILD}/tools/memo_bench" --iters 20 --json BENCH_pr8.json

echo "== tier-1: sharded-execution chaos harness (release, emits BENCH_pr9.json + BENCH_pr10.json) =="
# TPC-D at 2/4/8 nodes (row + batched fragments) bit-identical to the
# single-node oracle; seeded node-crash / net-failure schedules that must
# be absorbed or survived via re-homing + journal validation; the zipf
# skew bench where the mid-query distribution switch must beat the
# no-reopt control. PR 10 adds the replicated sweeps: k=2 node kills that
# must recover from surviving replicas with zero coordinator re-reads,
# seeded bit-rot that one scrub pass must fully detect and repair, and
# the replica-promotion vs coordinator-rehome repair bench
# (BENCH_pr10.json). Exits nonzero on any mismatch, leak, unpaid defense,
# coordinator fallback with replicas alive, or unscrubbed rot.
"${BUILD}/tools/shard_chaos_runner" --seed 42 --json BENCH_pr9.json \
  --json-replication BENCH_pr10.json

echo "== tier-1: ASan+UBSan fault/reopt/batch tests (${ASAN_BUILD}) =="
cmake -B "${ASAN_BUILD}" -S . -DREOPTDB_SANITIZE=ON >/dev/null
cmake --build "${ASAN_BUILD}" -j \
  --target fault_test reopt_test reopt_extension_test \
           batch_equivalence_test recovery_test workload_test feedback_test \
           txn_test shard_test chaos_runner dml_chaos_runner workload_runner \
           repeat_runner memo_bench shard_chaos_runner
# Run the binaries directly: ctest -R filters per-test names, which would
# silently skip suites whose names don't contain "fault"/"reopt".
# The fault-injection, batch-equivalence, crash-recovery, and workload
# suites (plus a workload_runner overload smoke) run twice: once in the
# default batched mode and once with REOPTDB_BATCH_SIZE=1 (the legacy
# row-at-a-time path), so both execution modes get sanitizer coverage.
for bs in default 1; do
  if [ "${bs}" = default ]; then unset REOPTDB_BATCH_SIZE
  else export REOPTDB_BATCH_SIZE="${bs}"; fi
  echo "-- batch_size=${bs} --"
  "${ASAN_BUILD}/tests/fault_test"
  "${ASAN_BUILD}/tests/batch_equivalence_test"
  "${ASAN_BUILD}/tests/recovery_test"
  "${ASAN_BUILD}/tests/workload_test"
  "${ASAN_BUILD}/tests/feedback_test"
  "${ASAN_BUILD}/tests/txn_test"
  "${ASAN_BUILD}/tests/shard_test"
  "${ASAN_BUILD}/tools/workload_runner" --seed 42
  "${ASAN_BUILD}/tools/repeat_runner" --seed 42
  # Identity assertions only under sanitizers — no speedup floor (ASan's
  # instrumentation skews the wall-clock ratio, the lifetime coverage of the
  # lazy repair path is what matters here).
  "${ASAN_BUILD}/tools/memo_bench" --iters 2 --min-speedup 0
done
unset REOPTDB_BATCH_SIZE
"${ASAN_BUILD}/tests/reopt_test"
"${ASAN_BUILD}/tests/reopt_extension_test"

echo "== tier-1: chaos crash-recovery smoke sweep (ASan+UBSan) =="
# Seeded randomized crash schedules over the tier-1 queries; chaos_runner
# internally covers both batch modes (1 and 1024) and exits nonzero on any
# oracle mismatch, leak, or non-empty journal.
"${ASAN_BUILD}/tools/chaos_runner" --seed 42 --trials 2

echo "== tier-1: DML chaos smoke sweep (ASan+UBSan, both batch modes) =="
# A reduced mid-transaction crash sweep under the sanitizers, in batched
# and row-at-a-time mode: the WAL/lock/recovery paths get lifetime checks.
for bs in default 1; do
  if [ "${bs}" = default ]; then unset REOPTDB_BATCH_SIZE
  else export REOPTDB_BATCH_SIZE="${bs}"; fi
  echo "-- batch_size=${bs} --"
  "${ASAN_BUILD}/tools/dml_chaos_runner" --seed 42 --schedules 12
done
unset REOPTDB_BATCH_SIZE

echo "== tier-1: sharded-execution chaos smoke sweep (ASan+UBSan) =="
# A reduced node-crash / skew sweep under the sanitizers; the runner
# internally covers row-at-a-time and batched fragments at every node
# count, so exchange buffers, re-homing, and journal validation all get
# lifetime checks in both execution modes.
"${ASAN_BUILD}/tools/shard_chaos_runner" --seed 42 --schedules 4

echo "== tier-1: OK =="
