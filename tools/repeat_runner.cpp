// Repeated-workload harness for the cardinality feedback loop and the
// plan-correction cache: the same seeded TPC-D query mix runs for several
// waves against one Database with feedback + plan caching enabled, over a
// deliberately stale catalog (update_fraction = 1.0) so wave 1 pays for
// mid-query re-optimization. The contract checked end to end:
//
//   * every query's rows are bit-identical, every wave, to a control run
//     on an identical database with feedback and caching disabled;
//   * wave 2 considers strictly fewer mid-query re-optimizations and
//     spends strictly less total simulated time than wave 1 (the harvested
//     feedback corrected the estimates; the corrected plans were cached);
//   * both trajectories are monotone non-increasing across all waves.
//
// The gate is tuned to be estimate-sensitive rather than unconditional:
// theta1 = 1e9 disables the Eq. (1) optimizer-cost brake and theta2 (default
// 0.01) makes Eq. (2) fire on any meaningful estimation error — and fire
// *early*, while enough of the plan remains for a corrected re-plan to win — so re-opt
// activity directly measures how wrong the optimizer's cardinalities were,
// which is exactly what feedback is supposed to fix.
//
// With --out it emits a BENCH json recording the per-wave trajectory
// (simulated time, so the numbers are exactly reproducible for a seed).
//
//   repeat_runner [--seed N] [--waves N] [--theta2 X] [--out FILE] [--verbose]
//
// Exit status 0 only if every wave satisfied the contract.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

/// Canonical form of a result set: one rendered string per row, sorted
/// (queries without ORDER BY have no defined row order); doubles rounded
/// so hash-order-independent aggregates compare equal.
std::vector<std::string> Canon(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::string s;
    for (size_t i = 0; i < t.size(); ++i) {
      const Value& v = t.at(i);
      if (i) s += "|";
      if (v.is_double()) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", v.AsDouble());
        s += buf;
      } else {
        s += v.ToString();
      }
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<Database> MakeDb(bool learning) {
  DatabaseOptions opts;
  opts.buffer_pool_pages = 128;
  opts.query_mem_pages = 48;
  opts.enable_feedback = learning;
  opts.enable_plan_cache = learning;
  auto db = std::make_unique<Database>(opts);
  tpcd::TpcdOptions gen;
  gen.scale_factor = 0.003;
  gen.update_fraction = 1.0;  // stale catalog: wave 1 genuinely mis-estimates
  Status st = tpcd::Load(db.get(), gen);
  if (!st.ok()) {
    std::fprintf(stderr, "dbgen failed: %s\n", st.ToString().c_str());
    std::exit(2);
  }
  return db;
}

struct WaveStats {
  int wave = 0;
  int queries = 0;
  int reopts_considered = 0;
  int plans_switched = 0;
  int cache_hits = 0;
  int feedback_corrections = 0;
  double sim_ms = 0;            ///< total simulated time across the wave
  double reopt_overhead_ms = 0;
  double saved_opt_ms = 0;      ///< optimization time skipped via cache hits
};

bool Verbose = false;

/// One wave: the seeded-shuffled query mix, sequentially, on the shared
/// learning database. Rows are diffed against `oracle` (the no-feedback
/// control). Returns false on any mismatch or execution failure.
bool RunWave(int wave, Database* db, const ReoptOptions& reopt,
             const std::vector<size_t>& order,
             const std::vector<tpcd::TpcdQuery>& all,
             const std::map<size_t, std::vector<std::string>>& oracle,
             WaveStats* stats) {
  stats->wave = wave;
  stats->queries = static_cast<int>(order.size());
  bool ok = true;
  for (size_t qi : order) {
    Result<QueryResult> r = db->ExecuteWith(all[qi].sql, reopt);
    if (!r.ok()) {
      std::fprintf(stderr, "[wave=%d] %s failed: %s\n", wave, all[qi].name,
                   r.status().ToString().c_str());
      return false;
    }
    const ExecutionReport& rep = r->report;
    stats->sim_ms += rep.sim_time_ms;
    stats->reopts_considered += rep.reopts_considered;
    stats->plans_switched += rep.plans_switched;
    stats->reopt_overhead_ms += rep.reopt_overhead_ms;
    stats->cache_hits += static_cast<int>(rep.trace.plan_cache_hits.size());
    stats->feedback_corrections +=
        static_cast<int>(rep.trace.feedback_applied.size());
    for (const PlanCacheHit& hit : rep.trace.plan_cache_hits) {
      stats->saved_opt_ms += hit.saved_opt_ms;
    }
    if (Canon(r->rows) != oracle.at(qi)) {
      std::fprintf(stderr,
                   "[wave=%d] ROW MISMATCH: %s differs from the no-feedback "
                   "control run\n",
                   wave, all[qi].name);
      ok = false;
    }
  }
  if (Verbose || !ok) {
    std::printf(
        "wave=%d queries=%d reopts=%d switches=%d cache_hits=%d "
        "corrections=%d sim_ms=%.1f overhead_ms=%.1f saved_opt_ms=%.1f %s\n",
        wave, stats->queries, stats->reopts_considered, stats->plans_switched,
        stats->cache_hits, stats->feedback_corrections, stats->sim_ms,
        stats->reopt_overhead_ms, stats->saved_opt_ms, ok ? "ok" : "FAIL");
  }
  return ok;
}

/// The acceptance trajectory: wave 2 strictly improves on wave 1, and both
/// re-opt activity and simulated time never increase from wave to wave.
bool CheckTrajectory(const std::vector<WaveStats>& waves) {
  bool ok = true;
  if (waves.size() < 3) {
    std::fprintf(stderr, "need >= 3 waves for the trajectory check\n");
    return false;
  }
  if (waves[0].plans_switched < 1) {
    std::fprintf(stderr,
                 "wave 1 committed no plan switch; nothing was learned "
                 "(gate mis-tuned?)\n");
    ok = false;
  }
  if (!(waves[1].reopts_considered < waves[0].reopts_considered)) {
    std::fprintf(stderr,
                 "wave 2 re-opt count %d not strictly below wave 1's %d\n",
                 waves[1].reopts_considered, waves[0].reopts_considered);
    ok = false;
  }
  if (!(waves[1].sim_ms < waves[0].sim_ms)) {
    std::fprintf(stderr,
                 "wave 2 sim time %.3f not strictly below wave 1's %.3f\n",
                 waves[1].sim_ms, waves[0].sim_ms);
    ok = false;
  }
  for (size_t w = 1; w < waves.size(); ++w) {
    if (waves[w].reopts_considered > waves[w - 1].reopts_considered) {
      std::fprintf(stderr, "re-opt count rose between waves %zu and %zu\n", w,
                   w + 1);
      ok = false;
    }
    // Simulated time is deterministic; allow only rounding slack.
    if (waves[w].sim_ms > waves[w - 1].sim_ms * (1 + 1e-9)) {
      std::fprintf(stderr,
                   "sim time rose between waves %zu and %zu (%.6f -> %.6f)\n",
                   w, w + 1, waves[w - 1].sim_ms, waves[w].sim_ms);
      ok = false;
    }
  }
  return ok;
}

void WriteBench(const char* path, uint64_t seed, double theta2,
                const std::vector<WaveStats>& waves) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(2);
  }
  const char* batch_env = std::getenv("REOPTDB_BATCH_SIZE");
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"benchmark\": \"repeat_runner (tools/repeat_runner.cpp)\",\n");
  std::fprintf(
      f,
      "  \"description\": \"The full seeded TPC-D query mix repeated for "
      "several waves against one database with the cardinality feedback "
      "loop and plan-correction cache enabled, over a stale catalog "
      "(update_fraction 1.0) so wave 1 mis-estimates and pays for mid-query "
      "re-optimization. The estimate-sensitive gate (theta1 1e9, small "
      "theta2) makes re-opt activity a direct measure of estimation error. "
      "Every query's rows are diffed bit-identical against a no-feedback "
      "control; wave 2 must consider strictly fewer re-optimizations and "
      "spend strictly less simulated time than wave 1, and both "
      "trajectories must be monotone non-increasing. Time is simulated, so "
      "the trajectory is exactly reproducible per seed.\",\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"theta2\": %g,\n", theta2);
  std::fprintf(f, "  \"batch_size_env\": \"%s\",\n",
               batch_env != nullptr ? batch_env : "default");
  std::fprintf(f, "  \"waves\": [\n");
  for (size_t i = 0; i < waves.size(); ++i) {
    const WaveStats& s = waves[i];
    std::fprintf(
        f,
        "    { \"wave\": %d, \"queries\": %d, \"reopts_considered\": %d, "
        "\"plans_switched\": %d, \"plan_cache_hits\": %d, "
        "\"feedback_corrections\": %d, \"sim_ms\": %.3f, "
        "\"reopt_overhead_ms\": %.3f, \"saved_opt_ms\": %.3f }%s\n",
        s.wave, s.queries, s.reopts_considered, s.plans_switched,
        s.cache_hits, s.feedback_corrections, s.sim_ms, s.reopt_overhead_ms,
        s.saved_opt_ms, i + 1 < waves.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"acceptance\": \"all rows bit-identical to the "
               "no-feedback control; wave-2 re-opt count and sim time "
               "strictly below wave 1; both monotone non-increasing: "
               "PASS\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace reoptdb

int main(int argc, char** argv) {
  using namespace reoptdb;
  uint64_t seed = 42;
  int num_waves = 3;
  double theta2 = 0.01;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--waves") && i + 1 < argc) {
      num_waves = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--theta2") && i + 1 < argc) {
      theta2 = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--verbose")) {
      Verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: repeat_runner [--seed N] [--waves N] [--theta2 X] "
                   "[--out FILE] [--verbose]\n");
      return 2;
    }
  }
  if (num_waves < 3) {
    std::fprintf(stderr, "--waves must be >= 3\n");
    return 2;
  }

  ReoptOptions reopt;
  reopt.mode = ReoptMode::kFull;
  reopt.theta1 = 1e9;     // never let optimizer cost veto a correction
  reopt.theta2 = theta2;  // fire on meaningful estimation error only

  const std::vector<tpcd::TpcdQuery> all = tpcd::AllQueries();

  // Control: identical data, feedback and caching off. Its rows are the
  // oracle every learning-wave result must match bit-for-bit.
  std::map<size_t, std::vector<std::string>> oracle;
  {
    std::unique_ptr<Database> control = MakeDb(/*learning=*/false);
    for (size_t qi = 0; qi < all.size(); ++qi) {
      Result<QueryResult> r = control->ExecuteWith(all[qi].sql, reopt);
      if (!r.ok()) {
        std::fprintf(stderr, "control %s failed: %s\n", all[qi].name,
                     r.status().ToString().c_str());
        return 1;
      }
      oracle[qi] = Canon(r->rows);
    }
  }

  std::unique_ptr<Database> learner = MakeDb(/*learning=*/true);
  bool ok = true;
  std::vector<WaveStats> waves;
  for (int w = 0; w < num_waves; ++w) {
    // Same query multiset every wave, seeded-shuffled submission order.
    std::vector<size_t> order;
    for (size_t qi = 0; qi < all.size(); ++qi) order.push_back(qi);
    Rng rng(seed + static_cast<uint64_t>(w));
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBelow(i)]);
    }
    WaveStats stats;
    ok = RunWave(w + 1, learner.get(), reopt, order, all, oracle, &stats) && ok;
    waves.push_back(stats);
  }
  ok = CheckTrajectory(waves) && ok;
  if (out_path != nullptr && ok) WriteBench(out_path, seed, theta2, waves);

  for (const WaveStats& s : waves) {
    std::printf(
        "wave=%d queries=%-3d reopts=%-3d switches=%-2d cache_hits=%-3d "
        "corrections=%-3d sim=%.1fms overhead=%.1fms saved_opt=%.1fms\n",
        s.wave, s.queries, s.reopts_considered, s.plans_switched,
        s.cache_hits, s.feedback_corrections, s.sim_ms, s.reopt_overhead_ms,
        s.saved_opt_ms);
  }
  std::printf("repeat_runner: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
