#include "storage/disk_manager.h"

#include <string>

namespace reoptdb {

Status DiskManager::CheckFault(const char* point) {
  if (faults_ == nullptr) return Status::OK();
  Status st = faults_->Check(point);
  // Injected IoError models a transient device error: retry with bounded
  // exponential backoff (simulated — the delay is charged to the query
  // clock, not slept). Persistent faults (e.g. an every-call policy)
  // exhaust the retries and surface to the caller.
  for (int attempt = 1; !st.ok() && st.code() == StatusCode::kIoError &&
                        attempt <= kMaxIoRetries;
       ++attempt) {
    ++stats_.io_retries;
    stats_.retry_penalty_ms += kRetryBackoffBaseMs * (1 << (attempt - 1));
    st = faults_->Check(point);
  }
  return st;
}

PageId DiskManager::AllocatePage() {
  PageId id = next_id_++;
  auto page = std::make_unique<Page>();
  page->Zero();
  // All zeroed pages share one checksum; compute it once.
  static const uint64_t kZeroChecksum = [] {
    Page z;
    z.Zero();
    return PageChecksum(z);
  }();
  checksums_[id] = kZeroChecksum;
  pages_.emplace(id, std::move(page));
  ++stats_.pages_allocated;
  return id;
}

Status DiskManager::FreePage(PageId id) {
  RETURN_IF_ERROR(CheckFault(faults::kStorageFree));
  auto it = pages_.find(id);
  if (it == pages_.end())
    return Status::IoError("free of unknown page " + std::to_string(id));
  pages_.erase(it);
  checksums_.erase(id);
  ++stats_.pages_freed;
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, Page* out) {
  RETURN_IF_ERROR(CheckFault(faults::kStorageRead));
  auto it = pages_.find(id);
  if (it == pages_.end())
    return Status::IoError("read of unknown page " + std::to_string(id));
  // Verify the recorded checksum before handing bytes to the caller. A
  // mismatch gets exactly one confirming re-read: a transient transfer
  // glitch would heal, on-media corruption would not. A confirmed mismatch
  // is kDataLoss — burning the full transient-error retry budget on it
  // would only delay the caller's repair-or-fail decision, and counting it
  // as io_retries would disguise rot as a flaky device.
  auto verify = [&]() -> Status {
    auto cs = checksums_.find(id);
    if (cs != checksums_.end() && PageChecksum(*it->second) != cs->second)
      return Status::IoError("checksum mismatch reading page " +
                             std::to_string(id));
    return Status::OK();
  };
  Status st = verify();
  if (!st.ok()) {
    ++stats_.io_retries;  // the single confirming re-read
    stats_.retry_penalty_ms += kRetryBackoffBaseMs;
    st = verify();
    if (!st.ok()) {
      ++stats_.data_loss_reads;
      return Status::DataLoss("persistent checksum mismatch reading page " +
                              std::to_string(id));
    }
  }
  *out = *it->second;
  ++stats_.page_reads;
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const Page& page) {
  Status fault = CheckFault(faults::kStorageWrite);
  // A corrupt:-action fault is not a write failure: the device acks the
  // write and then rots the stored bytes (checksum left stale). Any other
  // non-OK status surfaces as usual.
  const bool rot = fault.code() == StatusCode::kDataLoss;
  if (!rot) RETURN_IF_ERROR(fault);
  auto it = pages_.find(id);
  if (it == pages_.end())
    return Status::IoError("write of unknown page " + std::to_string(id));
  *it->second = page;
  checksums_[id] = PageChecksum(page);
  ++stats_.page_writes;
  if (rot) {
    for (size_t i = 0; i < 16; ++i) it->second->data[i] ^= 0x5a;
    ++stats_.pages_corrupted;
  }
  return Status::OK();
}

Status DiskManager::CorruptPageForTesting(PageId id) {
  auto it = pages_.find(id);
  if (it == pages_.end())
    return Status::IoError("corrupt of unknown page " + std::to_string(id));
  for (size_t i = 0; i < 16; ++i) it->second->data[i] ^= 0x5a;
  ++stats_.pages_corrupted;
  return Status::OK();
}

}  // namespace reoptdb
