// Compiled predicate evaluation.

#ifndef REOPTDB_EXEC_EXPRESSION_H_
#define REOPTDB_EXEC_EXPRESSION_H_

#include <vector>

#include "common/status.h"
#include "plan/physical_plan.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace reoptdb {

/// \brief A ScalarPred with column names resolved to tuple indexes.
struct CompiledPred {
  size_t col = 0;
  CmpOp op = CmpOp::kEq;
  bool rhs_is_column = false;
  Value literal;
  size_t rhs_col = 0;

  bool Eval(const Tuple& t) const;
};

/// Resolves a predicate against `schema`.
Result<CompiledPred> CompilePred(const ScalarPred& pred, const Schema& schema);

/// Resolves a batch; returns error on any unknown column.
Result<std::vector<CompiledPred>> CompilePreds(
    const std::vector<ScalarPred>& preds, const Schema& schema);

/// Evaluates a conjunction.
bool EvalAll(const std::vector<CompiledPred>& preds, const Tuple& t);

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_EXPRESSION_H_
