// Minimal JSON document model: enough for trace serialization, parsing and
// schema smoke checks — not a general-purpose library.
//
// Serialization is deterministic (object members keep insertion order,
// numbers use a fixed shortest-round-trip format), so
// Serialize(Parse(Serialize(x))) == Serialize(x) and tests can compare
// canonical strings to prove a lossless round trip.

#ifndef REOPTDB_OBS_JSON_H_
#define REOPTDB_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace reoptdb {
namespace obs {

/// \brief One JSON value (null / bool / number / string / array / object).
class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return num_; }
  const std::string& AsString() const { return str_; }

  // --- Object access (no-ops / nullptr on non-objects).
  const JsonValue* Find(const std::string& key) const;
  /// Appends or replaces a member; returns the stored value.
  JsonValue& Set(const std::string& key, JsonValue v);
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // --- Array access.
  JsonValue& Append(JsonValue v);
  const std::vector<JsonValue>& items() const { return items_; }

  /// Compact, deterministic serialization.
  std::string Serialize() const;

 private:
  void SerializeTo(std::string* out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace obs
}  // namespace reoptdb

#endif  // REOPTDB_OBS_JSON_H_
