// Deterministic pseudo-random number generation.
//
// All randomized behaviour in reoptdb (data generation, reservoir sampling,
// probabilistic counting) flows through Rng so that experiments are exactly
// reproducible from a seed.

#ifndef REOPTDB_COMMON_RNG_H_
#define REOPTDB_COMMON_RNG_H_

#include <cstdint>

namespace reoptdb {

/// \brief xoshiro256** PRNG with a SplitMix64-seeded state.
///
/// Fast, high-quality, and deterministic across platforms (unlike
/// std::default_random_engine whose distributions are
/// implementation-defined).
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool NextBool(double p);

  /// Forks an independent generator (for parallel-safe substreams).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// SplitMix64 step; also used standalone as a cheap value hasher.
uint64_t SplitMix64(uint64_t x);

}  // namespace reoptdb

#endif  // REOPTDB_COMMON_RNG_H_
