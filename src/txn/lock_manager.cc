#include "txn/lock_manager.h"

#include <algorithm>
#include <set>

namespace reoptdb {

namespace {

/// Least mode covering both (the mode a holder needs after an upgrade
/// request). {S, IX} have no exact join in the 4-mode lattice (that would
/// be SIX), so the combination escalates to X.
LockMode Supremum(LockMode a, LockMode b) {
  if (a == b) return a;
  if (a == LockMode::kX || b == LockMode::kX) return LockMode::kX;
  if (a == LockMode::kIS) return b;
  if (b == LockMode::kIS) return a;
  return LockMode::kX;  // {S, IX}
}

bool Covers(LockMode held, LockMode want) {
  return Supremum(held, want) == held;
}

}  // namespace

const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kS:
      return "S";
    case LockMode::kX:
      return "X";
  }
  return "?";
}

bool LockCompatible(LockMode a, LockMode b) {
  static const bool kMatrix[4][4] = {
      //              IS     IX     S      X
      /* IS */ {true, true, true, false},
      /* IX */ {true, true, false, false},
      /* S  */ {true, false, true, false},
      /* X  */ {false, false, false, false},
  };
  return kMatrix[static_cast<int>(a)][static_cast<int>(b)];
}

bool LockManager::GrantableFor(uint64_t txn_id, const std::string& resource,
                               LockMode mode) const {
  auto it = table_.find(resource);
  if (it == table_.end()) return true;
  for (const auto& [holder, held] : it->second) {
    if (holder == txn_id) continue;
    if (!LockCompatible(mode, held)) return false;
  }
  return true;
}

bool LockManager::FindCycle(uint64_t from, const std::string& resource,
                            LockMode mode,
                            std::vector<uint64_t>* cycle) const {
  // DFS over wait-for edges: a waiter points at every holder its requested
  // mode conflicts with. The graph is tiny (one wait per transaction), so
  // recursion depth is bounded by the active-transaction count.
  std::vector<uint64_t> path{from};
  std::set<uint64_t> visited{from};
  std::function<bool(uint64_t, const std::string&, LockMode)> dfs =
      [&](uint64_t t, const std::string& res, LockMode m) -> bool {
    auto it = table_.find(res);
    if (it == table_.end()) return false;
    for (const auto& [holder, held] : it->second) {
      if (holder == t || LockCompatible(m, held)) continue;
      if (holder == from) {
        *cycle = path;
        return true;
      }
      if (visited.count(holder)) continue;
      auto w = waiting_.find(holder);
      if (w == waiting_.end()) continue;  // not waiting: no outgoing edge
      visited.insert(holder);
      path.push_back(holder);
      if (dfs(holder, w->second.resource, w->second.mode)) return true;
      path.pop_back();
    }
    return false;
  };
  return dfs(from, resource, mode);
}

Result<LockOutcome> LockManager::Acquire(uint64_t txn_id,
                                         const std::string& resource,
                                         LockMode mode) {
  if (faults_ != nullptr)
    RETURN_IF_ERROR(faults_->Check(faults::kLockAcquire));

  LockMode target = mode;
  {
    auto it = table_.find(resource);
    if (it != table_.end()) {
      auto h = it->second.find(txn_id);
      if (h != it->second.end()) {
        if (Covers(h->second, mode)) return LockOutcome::kGranted;
        target = Supremum(h->second, mode);  // upgrade request
      }
    }
  }

  if (GrantableFor(txn_id, resource, target)) {
    table_[resource][txn_id] = target;
    waiting_.erase(txn_id);
    return LockOutcome::kGranted;
  }

  // Remember one conflicting holder for the LockWait record.
  last_conflict_holder_ = 0;
  for (const auto& [holder, held] : table_[resource]) {
    if (holder != txn_id && !LockCompatible(target, held)) {
      last_conflict_holder_ = holder;
      break;
    }
  }

  // Deadlock resolution: abort the youngest cycle member until either the
  // grant succeeds or no cycle remains. The victim-abort callback releases
  // the victim's locks, which may invalidate table_ iterators — every pass
  // re-reads the lock table.
  for (;;) {
    std::vector<uint64_t> cycle;
    if (!FindCycle(txn_id, resource, target, &cycle)) break;
    ++deadlocks_;
    uint64_t victim = *std::max_element(cycle.begin(), cycle.end());
    last_victim_ = victim;
    last_cycle_length_ = static_cast<int>(cycle.size());
    if (victim == txn_id) {
      waiting_.erase(txn_id);
      return LockOutcome::kDeadlockVictim;
    }
    if (!abort_victim_)
      return Status::Internal("deadlock detected but no victim-abort "
                              "callback is installed");
    RETURN_IF_ERROR(abort_victim_(victim, resource));
    if (GrantableFor(txn_id, resource, target)) {
      table_[resource][txn_id] = target;
      waiting_.erase(txn_id);
      return LockOutcome::kGranted;
    }
  }

  auto w = waiting_.find(txn_id);
  if (w == waiting_.end() || w->second.resource != resource) ++waits_;
  waiting_[txn_id] = WaitEntry{resource, target};
  return LockOutcome::kWait;
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  for (auto it = table_.begin(); it != table_.end();) {
    it->second.erase(txn_id);
    it = it->second.empty() ? table_.erase(it) : std::next(it);
  }
  waiting_.erase(txn_id);
}

void LockManager::Reset() {
  table_.clear();
  waiting_.clear();
}

bool LockManager::Holds(uint64_t txn_id, const std::string& resource,
                        LockMode* mode) const {
  auto it = table_.find(resource);
  if (it == table_.end()) return false;
  auto h = it->second.find(txn_id);
  if (h == it->second.end()) return false;
  if (mode != nullptr) *mode = h->second;
  return true;
}

std::vector<std::string> LockManager::HeldBy(uint64_t txn_id) const {
  std::vector<std::string> out;
  for (const auto& [resource, holders] : table_) {
    auto h = holders.find(txn_id);
    if (h != holders.end())
      out.push_back(resource + "(" + LockModeName(h->second) + ")");
  }
  return out;  // table_ is sorted, so the output is too
}

std::string LockManager::Describe() const {
  if (table_.empty() && waiting_.empty()) return "no locks held";
  std::string out;
  for (const auto& [resource, holders] : table_) {
    out += resource + ":";
    for (const auto& [holder, held] : holders)
      out += " txn" + std::to_string(holder) + "(" + LockModeName(held) + ")";
    out += "\n";
  }
  for (const auto& [txn, wait] : waiting_) {
    out += "waiting: txn" + std::to_string(txn) + " -> " + wait.resource +
           "(" + LockModeName(wait.mode) + ")\n";
  }
  return out;
}

}  // namespace reoptdb
