// DML chaos harness: seeded crash schedules over serial transaction
// scripts, diffing every crashed-then-recovered database against a
// crash-free serial oracle.
//
// Each schedule generates a deterministic script of multi-statement
// transactions (INSERT / UPDATE / DELETE over two tables), picks a crash
// class — mid-statement (lock.acquire, storage.read), mid-commit
// (wal.append, wal.fsync, txn.commit, storage.write) or mid-replay (a
// mid-commit crash whose recovery is itself crashed with storage.write) —
// and arms one point with `crash:nth:K`, K drawn from the seed. The run
// then executes the script until it crashes (or finishes clean — a
// schedule the script never reaches is a valid outcome), restarts through
// Database::RecoverStorage, and re-submits every transaction whose client
// tag TransactionManager::HasCommitted does not know, in original order.
//
// The invariant checked on every path: committed transactions survive
// (zero lost writes), uncommitted ones vanish (zero dirty reads), the
// final table contents are bit-identical to the oracle's, no transaction
// stays active, and a final checkpoint leaves the WAL empty with no
// leaked disk pages.
//
//   dml_chaos_runner [--seed N] [--schedules N] [--json PATH] [--verbose]
//
// After the sweep the harness benchmarks commit throughput and
// recovery-replay time at 1x (serial sessions) and 4x (WorkloadManager
// group commit) concurrent writers, emitting BENCH_pr7.json-style output
// when --json is given. Exit status 0 only if every schedule converged.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "engine/database.h"
#include "engine/workload_manager.h"
#include "parser/statement.h"

namespace reoptdb {
namespace {

bool Verbose = false;

/// Canonical form of a result set: one rendered string per row, sorted;
/// doubles rounded so replayed state compares equal bit-for-bit.
std::vector<std::string> Canon(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::string s;
    for (size_t i = 0; i < t.size(); ++i) {
      const Value& v = t.at(i);
      if (i) s += "|";
      if (v.is_double()) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", v.AsDouble());
        s += buf;
      } else {
        s += v.ToString();
      }
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<Database> MakeDb() {
  DatabaseOptions opts;
  opts.buffer_pool_pages = 128;
  opts.query_mem_pages = 48;
  auto db = std::make_unique<Database>(opts);
  Schema acct(std::vector<Column>{{"", "id", ValueType::kInt64, 8},
                                  {"", "grp", ValueType::kInt64, 8},
                                  {"", "bal", ValueType::kDouble, 8}});
  Schema ledger(std::vector<Column>{{"", "seq", ValueType::kInt64, 8},
                                    {"", "note", ValueType::kString, 12}});
  if (!db->CreateTable("acct", acct).ok() ||
      !db->CreateTable("ledger", ledger).ok()) {
    std::fprintf(stderr, "setup failed\n");
    std::exit(2);
  }
  std::vector<Tuple> rows;
  for (int i = 0; i < 200; ++i)
    rows.push_back(Tuple({Value(int64_t{i}), Value(int64_t{i % 8}),
                          Value(100.0 + i)}));
  if (!db->BulkLoad("acct", rows).ok() ||
      !db->DeclareKey("acct", "id").ok() || !db->Analyze("acct").ok() ||
      !db->Analyze("ledger").ok()) {
    std::fprintf(stderr, "load failed\n");
    std::exit(2);
  }
  return db;
}

/// One transaction of the script: 1-3 DML statements plus its durable
/// client tag ("txn-<i>"), re-checkable across crashes via HasCommitted.
struct ScriptTxn {
  std::string tag;
  std::vector<std::string> statements;
};

/// Deterministic serial script: every statement's effect depends only on
/// the seed, never on interleaving, so the crash-free oracle is exact.
std::vector<ScriptTxn> MakeScript(uint64_t seed, int txns) {
  Rng rng(seed);
  std::vector<ScriptTxn> script;
  int64_t next_id = 1000;  // fresh keys: inserts never collide with base rows
  int64_t next_seq = 0;
  for (int i = 0; i < txns; ++i) {
    ScriptTxn t;
    t.tag = "txn-" + std::to_string(i);
    const int stmts = static_cast<int>(rng.NextInt(1, 3));
    for (int s = 0; s < stmts; ++s) {
      switch (rng.NextBelow(4)) {
        case 0: {  // multi-row insert
          std::string sql = "INSERT INTO acct VALUES ";
          const int n = static_cast<int>(rng.NextInt(1, 4));
          for (int r = 0; r < n; ++r) {
            if (r) sql += ", ";
            sql += "(" + std::to_string(next_id++) + ", " +
                   std::to_string(rng.NextBelow(8)) + ", " +
                   std::to_string(50 + static_cast<int>(rng.NextBelow(900))) +
                   ".5)";
          }
          t.statements.push_back(sql);
          break;
        }
        case 1:  // group-targeted update (literal SET: the full grammar)
          t.statements.push_back(
              "UPDATE acct SET bal = " +
              std::to_string(1 + static_cast<int>(rng.NextBelow(900))) +
              ".25 WHERE grp = " + std::to_string(rng.NextBelow(8)));
          break;
        case 2:  // point delete (may hit zero rows; still deterministic)
          t.statements.push_back(
              "DELETE FROM acct WHERE id = " +
              std::to_string(rng.NextBelow(200 + static_cast<uint64_t>(i))));
          break;
        default:  // audit append on the second table
          t.statements.push_back("INSERT INTO ledger VALUES (" +
                                 std::to_string(next_seq++) + ", '" + t.tag +
                                 "')");
          break;
      }
    }
    script.push_back(std::move(t));
  }
  return script;
}

enum class CrashClass { kMidStatement, kMidCommit, kMidReplay };

const char* ClassName(CrashClass c) {
  switch (c) {
    case CrashClass::kMidStatement: return "mid-statement";
    case CrashClass::kMidCommit: return "mid-commit";
    default: return "mid-replay";
  }
}

/// Arms one crash point for the class; nth drawn from the trial stream.
std::string ArmSchedule(CrashClass c, Rng* rng) {
  static const char* kMidStmt[] = {faults::kLockAcquire, faults::kStorageRead};
  static const char* kMidCommit[] = {faults::kWalAppend, faults::kWalFsync,
                                     faults::kTxnCommit, faults::kStorageWrite};
  const char* point;
  uint64_t max_nth;
  if (c == CrashClass::kMidStatement) {
    point = kMidStmt[rng->NextBelow(2)];
    max_nth = 60;  // statement-path points fire often; spread across txns
  } else {
    // kMidReplay also crashes the *run* at a commit point first; the
    // replay crash itself is armed separately before RecoverStorage.
    point = kMidCommit[rng->NextBelow(4)];
    max_nth = 24;
  }
  return std::string(point) + "=crash:nth:" +
         std::to_string(rng->NextInt(1, max_nth));
}

struct Snapshot {
  std::vector<std::string> acct;
  std::vector<std::string> ledger;
};

/// Reads both tables through the SQL layer (committed state only).
Result<Snapshot> ReadState(Database* db) {
  Snapshot s;
  ASSIGN_OR_RETURN(QueryResult acct,
                   db->ExecuteSql("SELECT id, grp, bal FROM acct"));
  ASSIGN_OR_RETURN(QueryResult ledger,
                   db->ExecuteSql("SELECT seq, note FROM ledger"));
  s.acct = Canon(acct.rows);
  s.ledger = Canon(ledger.rows);
  return s;
}

/// Runs one scripted transaction to commit. kCrashed propagates; lock
/// waits cannot happen in a serial session but are retried defensively.
Status RunScriptTxn(Database* db, const ScriptTxn& t) {
  ASSIGN_OR_RETURN(uint64_t txn, db->BeginTxn());
  for (const std::string& sql : t.statements) {
    ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
    for (int attempt = 0;; ++attempt) {
      Result<uint64_t> r = db->ExecuteDml(txn, stmt);
      if (r.ok()) break;
      if (r.status().code() == StatusCode::kLockWait && attempt < 8) continue;
      (void)db->AbortTxn(txn);
      return r.status();
    }
  }
  return db->CommitTxn(txn, t.tag);
}

struct Tally {
  int trials = 0;
  int crashed = 0;
  int replay_crashes = 0;
  int clean = 0;
  int resubmitted = 0;  // transactions re-run because HasCommitted was false
  int errors = 0;
};

/// One schedule: crash (maybe), restart, re-submit, diff vs oracle.
bool RunTrial(uint64_t seed, CrashClass cls, Tally* tally) {
  ++tally->trials;
  Rng rng(seed);
  const std::vector<ScriptTxn> script = MakeScript(seed * 31 + 7, 10);

  // Crash-free serial oracle for this script.
  std::unique_ptr<Database> oracle_db = MakeDb();
  for (const ScriptTxn& t : script) {
    Status st = RunScriptTxn(oracle_db.get(), t);
    if (!st.ok()) {
      std::fprintf(stderr, "[seed=%llu] oracle failed: %s\n",
                   static_cast<unsigned long long>(seed),
                   st.ToString().c_str());
      ++tally->errors;
      return false;
    }
  }
  Result<Snapshot> oracle = ReadState(oracle_db.get());
  if (!oracle.ok()) {
    ++tally->errors;
    return false;
  }
  if (!oracle_db->Checkpoint().ok()) {
    ++tally->errors;
    return false;
  }
  const size_t oracle_pages = oracle_db->disk()->live_pages();

  // Chaos run.
  std::unique_ptr<Database> db = MakeDb();
  Status st = db->faults()->Configure(ArmSchedule(cls, &rng));
  if (!st.ok()) {
    std::fprintf(stderr, "[seed=%llu] bad schedule: %s\n",
                 static_cast<unsigned long long>(seed), st.ToString().c_str());
    ++tally->errors;
    return false;
  }

  bool saw_crash = false;
  const int kMaxIncarnations = 6;
  for (int incarnation = 0; incarnation < kMaxIncarnations; ++incarnation) {
    Status run = Status::OK();
    for (const ScriptTxn& t : script) {
      if (db->txn_manager()->HasCommitted(t.tag)) continue;
      if (incarnation > 0) ++tally->resubmitted;
      run = RunScriptTxn(db.get(), t);
      if (!run.ok()) break;
    }
    if (run.ok()) break;
    if (run.code() != StatusCode::kCrashed) {
      std::fprintf(stderr, "[seed=%llu %s] non-crash failure: %s\n",
                   static_cast<unsigned long long>(seed), ClassName(cls),
                   run.ToString().c_str());
      ++tally->errors;
      return false;
    }
    saw_crash = true;
    ++tally->crashed;
    // Restart: armed schedules die with the "process". Mid-replay trials
    // (and occasionally others) crash the first recovery attempt too.
    db->faults()->Reset();
    const bool chaos_replay =
        incarnation == 0 &&
        (cls == CrashClass::kMidReplay || rng.NextDouble() < 0.2);
    if (chaos_replay) {
      (void)db->faults()->Configure(
          std::string(faults::kStorageWrite) + "=crash:nth:" +
          std::to_string(rng.NextInt(1, 12)));
    }
    Status rec = db->RecoverStorage();
    if (!rec.ok() && rec.code() == StatusCode::kCrashed) {
      ++tally->replay_crashes;
      db->faults()->Reset();
      rec = db->RecoverStorage();
    }
    if (!rec.ok()) {
      std::fprintf(stderr, "[seed=%llu %s] recovery failed: %s\n",
                   static_cast<unsigned long long>(seed), ClassName(cls),
                   rec.ToString().c_str());
      ++tally->errors;
      return false;
    }
  }
  db->faults()->Reset();
  if (!saw_crash) ++tally->clean;

  // Invariants: every transaction durable exactly once, none active,
  // state bit-identical to the serial oracle.
  for (const ScriptTxn& t : script) {
    if (!db->txn_manager()->HasCommitted(t.tag)) {
      std::fprintf(stderr, "[seed=%llu %s] LOST COMMIT %s\n",
                   static_cast<unsigned long long>(seed), ClassName(cls),
                   t.tag.c_str());
      ++tally->errors;
      return false;
    }
  }
  if (db->txn_manager()->active_count() != 0) {
    std::fprintf(stderr, "[seed=%llu %s] dangling transactions\n",
                 static_cast<unsigned long long>(seed), ClassName(cls));
    ++tally->errors;
    return false;
  }
  Result<Snapshot> got = ReadState(db.get());
  if (!got.ok()) {
    ++tally->errors;
    return false;
  }
  if (got->acct != oracle->acct || got->ledger != oracle->ledger) {
    std::fprintf(stderr,
                 "[seed=%llu %s] STATE MISMATCH vs oracle "
                 "(acct %zu/%zu rows, ledger %zu/%zu rows)\n",
                 static_cast<unsigned long long>(seed), ClassName(cls),
                 got->acct.size(), oracle->acct.size(), got->ledger.size(),
                 oracle->ledger.size());
    ++tally->errors;
    return false;
  }
  // A final checkpoint must drain the WAL and converge on the oracle's
  // footprint: anything above it is a leaked page.
  if (!db->Checkpoint().ok() ||
      db->txn_manager()->wal()->flushed_record_count() != 0) {
    std::fprintf(stderr, "[seed=%llu %s] WAL not drained by checkpoint\n",
                 static_cast<unsigned long long>(seed), ClassName(cls));
    ++tally->errors;
    return false;
  }
  if (db->disk()->live_pages() > oracle_pages) {
    std::fprintf(stderr, "[seed=%llu %s] PAGE LEAK: %zu live vs oracle %zu\n",
                 static_cast<unsigned long long>(seed), ClassName(cls),
                 db->disk()->live_pages(), oracle_pages);
    ++tally->errors;
    return false;
  }
  if (Verbose)
    std::printf("[seed=%llu %s] ok%s\n",
                static_cast<unsigned long long>(seed), ClassName(cls),
                saw_crash ? " (crashed+recovered)" : " (clean)");
  return true;
}

struct BenchRow {
  int writers = 0;
  uint64_t commits = 0;
  double commit_throughput_per_s = 0;
  uint64_t wal_records = 0;
  double recovery_replay_ms = 0;
  uint64_t fsyncs = 0;
};

double WallMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Commit throughput + recovery-replay time at `writers` concurrent
/// sessions. 1x runs serial autocommit sessions; 4x interleaves the same
/// statements through the WorkloadManager (group commit, shared fsyncs).
Result<BenchRow> RunBench(int writers, int statements) {
  std::unique_ptr<Database> db = MakeDb();
  std::vector<std::string> stmts;
  for (int i = 0; i < statements; ++i) {
    switch (i % 3) {
      case 0:
        stmts.push_back("INSERT INTO acct VALUES (" +
                        std::to_string(5000 + i) + ", " +
                        std::to_string(i % 8) + ", 7.5)");
        break;
      case 1:
        stmts.push_back("UPDATE acct SET bal = " + std::to_string(i) +
                        ".0 WHERE grp = " + std::to_string(i % 8));
        break;
      default:
        stmts.push_back("DELETE FROM acct WHERE id = " + std::to_string(i));
        break;
    }
  }

  const uint64_t commits_before = db->txn_manager()->commits_completed();
  const auto t0 = std::chrono::steady_clock::now();
  if (writers <= 1) {
    for (const std::string& sql : stmts) {
      ASSIGN_OR_RETURN(QueryResult r, db->ExecuteSql(sql));
      (void)r;
    }
  } else {
    WorkloadOptions wopts;
    wopts.max_active = writers;
    wopts.max_queue = stmts.size() + 1;
    WorkloadManager wm(db.get(), wopts);
    for (const std::string& sql : stmts) wm.Submit(sql);
    ASSIGN_OR_RETURN(std::vector<WorkloadQueryResult> results, wm.Run());
    for (const WorkloadQueryResult& r : results)
      if (!r.status.ok()) return r.status;
  }
  const double run_ms = WallMs(t0);

  BenchRow row;
  row.writers = writers;
  row.commits = db->txn_manager()->commits_completed() - commits_before;
  row.commit_throughput_per_s =
      run_ms > 0 ? row.commits / (run_ms / 1000.0) : 0;
  row.wal_records = db->txn_manager()->wal()->flushed_record_count();
  row.fsyncs = db->txn_manager()->wal()->fsync_count();

  // Simulated crash with a full WAL: replay every committed transaction.
  const auto t1 = std::chrono::steady_clock::now();
  RETURN_IF_ERROR(db->RecoverStorage());
  row.recovery_replay_ms = WallMs(t1);
  return row;
}

}  // namespace
}  // namespace reoptdb

int main(int argc, char** argv) {
  using namespace reoptdb;
  uint64_t seed = 42;
  int schedules = 120;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--schedules") && i + 1 < argc) {
      schedules = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--verbose")) {
      Verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: dml_chaos_runner [--seed N] [--schedules N] "
                   "[--json PATH] [--verbose]\n");
      return 2;
    }
  }

  Tally tally;
  bool ok = true;
  for (int t = 0; t < schedules; ++t) {
    // Round-robin over the classes so every sweep covers all three.
    const CrashClass cls = static_cast<CrashClass>(t % 3);
    const uint64_t trial_seed = seed * 1000003ULL + static_cast<uint64_t>(t);
    ok = RunTrial(trial_seed, cls, &tally) && ok;
  }
  std::printf(
      "dml-chaos schedules=%d crashed=%d replay-crashes=%d clean=%d "
      "resubmitted=%d errors=%d\n",
      tally.trials, tally.crashed, tally.replay_crashes, tally.clean,
      tally.resubmitted, tally.errors);

  std::vector<BenchRow> bench;
  for (int writers : {1, 4}) {
    Result<BenchRow> row = RunBench(writers, 240);
    if (!row.ok()) {
      std::fprintf(stderr, "bench (%dx writers) failed: %s\n", writers,
                   row.status().ToString().c_str());
      ok = false;
      continue;
    }
    bench.push_back(*row);
    std::printf(
        "bench writers=%d commits=%llu throughput=%.0f/s wal_records=%llu "
        "fsyncs=%llu replay=%.2fms\n",
        row->writers, static_cast<unsigned long long>(row->commits),
        row->commit_throughput_per_s,
        static_cast<unsigned long long>(row->wal_records),
        static_cast<unsigned long long>(row->fsyncs),
        row->recovery_replay_ms);
  }

  if (json_path) {
    std::FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 2;
    }
    std::fprintf(f,
                 "{\n  \"schedules\": %d,\n  \"crashed\": %d,\n"
                 "  \"replay_crashes\": %d,\n  \"clean\": %d,\n"
                 "  \"resubmitted_txns\": %d,\n  \"errors\": %d,\n"
                 "  \"writers\": [",
                 tally.trials, tally.crashed, tally.replay_crashes,
                 tally.clean, tally.resubmitted, tally.errors);
    for (size_t i = 0; i < bench.size(); ++i) {
      const BenchRow& b = bench[i];
      std::fprintf(f,
                   "%s\n    {\"writers\": %d, \"commits\": %llu, "
                   "\"commit_throughput_per_s\": %.1f, \"wal_records\": %llu, "
                   "\"group_commit_fsyncs\": %llu, "
                   "\"recovery_replay_ms\": %.3f}",
                   i ? "," : "", b.writers,
                   static_cast<unsigned long long>(b.commits),
                   b.commit_throughput_per_s,
                   static_cast<unsigned long long>(b.wal_records),
                   static_cast<unsigned long long>(b.fsyncs),
                   b.recovery_replay_ms);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

  std::printf(ok ? "dml-chaos: all schedules converged on the oracle\n"
                 : "dml-chaos: FAILURES above\n");
  return ok ? 0 : 1;
}
