#include "shard/skew_detector.h"

#include <algorithm>
#include <cmath>

namespace reoptdb {

std::optional<SkewDetector::BuildSkew> SkewDetector::CheckBuildSkew(
    const std::vector<int>& node_ids, const std::vector<uint64_t>& recv_rows,
    double est_total_rows) const {
  if (node_ids.empty() || node_ids.size() != recv_rows.size())
    return std::nullopt;
  size_t worst = 0;
  uint64_t total = 0;
  for (size_t i = 0; i < recv_rows.size(); ++i) {
    total += recv_rows[i];
    if (recv_rows[i] > recv_rows[worst]) worst = i;
  }
  const double share = std::max(
      est_total_rows / static_cast<double>(node_ids.size()), 1.0);
  const double mean =
      static_cast<double>(total) / static_cast<double>(node_ids.size());
  const uint64_t rows = recv_rows[worst];
  if (static_cast<double>(rows) < t_.skew_factor * share) return std::nullopt;
  if (rows < t_.min_skew_rows) return std::nullopt;
  if (static_cast<double>(rows) < 2.0 * mean) return std::nullopt;
  BuildSkew s;
  s.node = node_ids[worst];
  s.node_rows = rows;
  s.est_share = share;
  return s;
}

std::vector<SkewDetector::Straggler> SkewDetector::CheckStragglers(
    const std::vector<int>& node_ids, const std::vector<double>& node_ms) const {
  std::vector<Straggler> out;
  if (node_ids.size() < 2 || node_ids.size() != node_ms.size()) return out;
  for (size_t i = 0; i < node_ids.size(); ++i) {
    std::vector<double> peers;
    peers.reserve(node_ms.size() - 1);
    for (size_t j = 0; j < node_ms.size(); ++j)
      if (j != i) peers.push_back(node_ms[j]);
    const double baseline = Percentile(std::move(peers),
                                       t_.straggler_percentile);
    if (baseline <= 0) continue;
    if (node_ms[i] <= t_.straggler_ratio * baseline) continue;
    Straggler s;
    s.node = node_ids[i];
    s.node_ms = node_ms[i];
    s.percentile_ms = baseline;
    s.new_weight = std::clamp(baseline / node_ms[i], 0.1, 1.0);
    out.push_back(s);
  }
  return out;
}

std::vector<int> SkewDetector::BuildSlotTable(
    const std::vector<int>& node_ids, const std::vector<double>& weights) {
  std::vector<int> table;
  if (node_ids.empty() || node_ids.size() != weights.size()) return table;
  const size_t n = node_ids.size();
  const size_t slots = static_cast<size_t>(kSlotsPerNode) * n;
  double total_w = 0;
  for (double w : weights) total_w += std::max(w, 0.0);
  if (total_w <= 0) total_w = static_cast<double>(n);

  // Largest-remainder apportionment: exact floors first, then the leftover
  // slots to the largest fractional remainders (ties by node order, which
  // is node-id order by construction).
  std::vector<size_t> counts(n, 0);
  std::vector<std::pair<double, size_t>> remainders;
  size_t assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    const double w = std::max(weights[i], 0.0) > 0
                         ? std::max(weights[i], 0.0)
                         : 1.0 / static_cast<double>(n);
    const double exact = static_cast<double>(slots) * w / total_w;
    counts[i] = static_cast<size_t>(std::floor(exact));
    if (counts[i] == 0) counts[i] = 1;  // never starve a live node
    assigned += counts[i];
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  size_t r = 0;
  while (assigned < slots) {
    counts[remainders[r % n].second]++;
    ++assigned;
    ++r;
  }
  while (assigned > slots) {  // the +1 floors may overshoot on tiny weights
    const size_t victim = remainders[(n - 1) - (r % n)].second;
    if (counts[victim] > 1) {
      counts[victim]--;
      --assigned;
    }
    ++r;
  }
  table.reserve(slots);
  for (size_t i = 0; i < n; ++i)
    for (size_t k = 0; k < counts[i]; ++k) table.push_back(node_ids[i]);
  return table;
}

double SkewDetector::Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace reoptdb
