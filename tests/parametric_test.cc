// Tests for parametric plans (the paper's Section 4 hybrid).

#include "gtest/gtest.h"
#include "optimizer/parametric.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "test_util.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

using testing_util::Canon;
using testing_util::LoadEmpDept;

class ParametricTest : public ::testing::Test {
 protected:
  ParametricTest() { LoadEmpDept(&db_, 2000, 20); }

  Result<QuerySpec> BindSql(const std::string& sql) {
    Result<SelectStmtAst> ast = ParseSelect(sql);
    if (!ast.ok()) return ast.status();
    return Bind(ast.value(), *db_.catalog());
  }

  Database db_;
};

TEST_F(ParametricTest, BuildsOneBranchPerBudget) {
  Result<QuerySpec> spec = BindSql(
      "SELECT emp_id FROM emp, dept WHERE emp.dept_id = dept.dept_id");
  ASSERT_TRUE(spec.ok());
  Result<ParametricPlanSet> set = ParametricPlanSet::Plan(
      db_.catalog(), &db_.cost_model(), OptimizerOptions{}, spec.value(),
      {16, 64, 256, 64});  // duplicate collapses
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->size(), 3u);
  EXPECT_GT(set->total_sim_opt_time_ms(), 0);
  for (const ParametricBranch& b : set->branches()) {
    ASSERT_NE(b.plan, nullptr);
    EXPECT_GT(b.plans_enumerated, 0u);
    EXPECT_GT(b.plan->est.cost_total_ms, 0);
  }
}

TEST_F(ParametricTest, PickNearestInLogSpace) {
  Result<QuerySpec> spec = BindSql("SELECT emp_id FROM emp");
  ASSERT_TRUE(spec.ok());
  ParametricPlanSet set =
      ParametricPlanSet::Plan(db_.catalog(), &db_.cost_model(),
                              OptimizerOptions{}, spec.value(), {16, 256})
          .value();
  EXPECT_DOUBLE_EQ(set.Pick(10).assumed_mem_pages, 16);
  EXPECT_DOUBLE_EQ(set.Pick(16).assumed_mem_pages, 16);
  // 64 = geometric mean: log-distance ties break to the first branch.
  EXPECT_DOUBLE_EQ(set.Pick(63).assumed_mem_pages, 16);
  EXPECT_DOUBLE_EQ(set.Pick(65).assumed_mem_pages, 256);
  EXPECT_DOUBLE_EQ(set.Pick(100000).assumed_mem_pages, 256);
}

TEST_F(ParametricTest, InvalidInputsRejected) {
  Result<QuerySpec> spec = BindSql("SELECT emp_id FROM emp");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(ParametricPlanSet::Plan(db_.catalog(), &db_.cost_model(),
                                       OptimizerOptions{}, spec.value(), {})
                   .ok());
  EXPECT_FALSE(ParametricPlanSet::Plan(db_.catalog(), &db_.cost_model(),
                                       OptimizerOptions{}, spec.value(),
                                       {64, -1})
                   .ok());
}

TEST_F(ParametricTest, PrepareExecuteMatchesDirectExecution) {
  const std::string sql =
      "SELECT emp.dept_id, SUM(salary) AS total FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id GROUP BY emp.dept_id";
  Result<PreparedQuery> prepared = db_.Prepare(sql);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared->plans.size(), 3u);  // default 1/4x, 1x, 4x

  ReoptOptions off;
  off.mode = ReoptMode::kOff;
  Result<QueryResult> direct = db_.ExecuteWith(sql, off);
  ASSERT_TRUE(direct.ok());

  for (double mem : {8.0, 64.0, 512.0}) {
    Result<QueryResult> via =
        db_.ExecutePrepared(*prepared, mem, off);
    ASSERT_TRUE(via.ok()) << via.status().ToString();
    EXPECT_EQ(Canon(via->rows), Canon(direct->rows)) << "mem=" << mem;
  }
}

TEST_F(ParametricTest, RepeatedExecutionIsStable) {
  Result<PreparedQuery> prepared =
      db_.Prepare("SELECT COUNT(*) FROM emp WHERE salary > 2000");
  ASSERT_TRUE(prepared.ok());
  ReoptOptions full;
  Result<QueryResult> a = db_.ExecutePrepared(*prepared, 64, full);
  Result<QueryResult> b = db_.ExecutePrepared(*prepared, 64, full);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Cloned branches must not leak run-time state between executions.
  EXPECT_EQ(Canon(a->rows), Canon(b->rows));
  EXPECT_DOUBLE_EQ(a->report.sim_time_ms, b->report.sim_time_ms);
}

TEST(ParametricHybridTest, ReoptCoversUnanticipatedCases) {
  // Stale catalog: the parametric branches are all planned from wrong
  // statistics; the hybrid (branch pick + Dynamic Re-Optimization) must
  // still return correct results and may act mid-query.
  DatabaseOptions opts;
  opts.buffer_pool_pages = 128;
  opts.query_mem_pages = 64;
  Database db(opts);
  tpcd::TpcdOptions gen;
  gen.scale_factor = 0.003;
  gen.update_fraction = 1.0;
  ASSERT_TRUE(tpcd::Load(&db, gen).ok());

  Result<PreparedQuery> prepared = db.Prepare(tpcd::Q5Sql(), {16, 64, 256});
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  ReoptOptions off;
  off.mode = ReoptMode::kOff;
  ReoptOptions full;
  Result<QueryResult> pure = db.ExecutePrepared(*prepared, 64, off);
  Result<QueryResult> hybrid = db.ExecutePrepared(*prepared, 64, full);
  ASSERT_TRUE(pure.ok());
  ASSERT_TRUE(hybrid.ok());
  EXPECT_EQ(Canon(pure->rows), Canon(hybrid->rows));
  // The hybrid should never be meaningfully slower than pure parametric.
  EXPECT_LT(hybrid->report.sim_time_ms, pure->report.sim_time_ms * 1.10);
}

}  // namespace
}  // namespace reoptdb
