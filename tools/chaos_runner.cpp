// Chaos crash harness: seeded randomized crash schedules over the tier-1
// TPC-D queries, in both row and batched modes, diffing every
// crashed-then-recovered result against a crash-free oracle.
//
// Each trial arms a random subset of the fault-injection points with
// `crash:nth:K` triggers (K drawn from a seeded stream), runs a query
// until it crashes (or finishes — a schedule the query never reaches is a
// valid outcome), then restarts through Database::Recover. With some
// probability a trial also crashes the recovery itself (recovery.load or a
// fresh mid-resume schedule), forcing a second restart. The invariant
// checked on every path: the final rows are bit-identical to the oracle's,
// no temp tables or disk pages leak, and the journal ends empty.
//
//   chaos_runner [--seed N] [--trials N] [--verbose]
//
// Exit status 0 only if every trial converged on the oracle's rows.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "engine/database.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

struct Tier1Query {
  const char* name;
  std::string (*sql)();
};

const Tier1Query kQueries[] = {
    {"Q1", tpcd::Q1Sql}, {"Q3", tpcd::Q3Sql}, {"Q5", tpcd::Q5Sql},
    {"Q6", tpcd::Q6Sql}, {"Q7", tpcd::Q7Sql}, {"Q8", tpcd::Q8Sql},
    {"Q10", tpcd::Q10Sql},
};

/// Canonical form of a result set: one rendered string per row, sorted
/// (queries without ORDER BY have no defined row order); doubles rounded
/// so hash-order-independent aggregates compare equal.
std::vector<std::string> Canon(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::string s;
    for (size_t i = 0; i < t.size(); ++i) {
      const Value& v = t.at(i);
      if (i) s += "|";
      if (v.is_double()) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", v.AsDouble());
        s += buf;
      } else {
        s += v.ToString();
      }
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<Database> MakeDb() {
  DatabaseOptions opts;
  opts.buffer_pool_pages = 128;
  opts.query_mem_pages = 48;
  auto db = std::make_unique<Database>(opts);
  tpcd::TpcdOptions gen;
  gen.scale_factor = 0.003;
  gen.update_fraction = 1.0;  // stale catalog: plan switches actually fire
  Status st = tpcd::Load(db.get(), gen);
  if (!st.ok()) {
    std::fprintf(stderr, "dbgen failed: %s\n", st.ToString().c_str());
    std::exit(2);
  }
  return db;
}

ReoptOptions EagerGate(size_t batch_size) {
  ReoptOptions o;
  o.mode = ReoptMode::kFull;
  o.theta2 = -1.0;
  o.theta1 = 1e9;
  o.batch_size = batch_size;
  return o;
}

/// Draws a random crash schedule: 1–3 distinct points, each crash:nth:K.
std::string RandomSchedule(Rng* rng, bool include_recovery_load) {
  const std::vector<std::string>& points = FaultInjector::KnownPoints();
  std::vector<std::string> pool;
  for (const std::string& p : points) {
    if (!include_recovery_load && p == faults::kRecoveryLoad) continue;
    pool.push_back(p);
  }
  std::string schedule;
  const int n = static_cast<int>(rng->NextInt(1, 3));
  for (int i = 0; i < n; ++i) {
    const std::string& point =
        pool[static_cast<size_t>(rng->NextBelow(pool.size()))];
    if (schedule.find(point) != std::string::npos) continue;  // dup: skip
    if (!schedule.empty()) schedule += ",";
    schedule += point + "=crash:nth:" + std::to_string(rng->NextInt(1, 40));
  }
  return schedule;
}

struct Tally {
  int trials = 0;
  int crashed = 0;
  int re_crashed = 0;  // a later restart crashed again
  int resumed = 0;
  int fallbacks = 0;
  int mismatches = 0;
  int errors = 0;
};

bool Verbose = false;

/// One trial: crash (maybe), then restart until the query completes;
/// returns false on a row mismatch, leak, or unexpected error.
bool RunTrial(const Tier1Query& q, size_t batch_size, uint64_t seed,
              const std::vector<std::string>& oracle, Tally* tally) {
  ++tally->trials;
  Rng rng(seed);
  std::unique_ptr<Database> db = MakeDb();
  const ReoptOptions opts = EagerGate(batch_size);
  const size_t baseline_pages = db->disk()->live_pages();

  Status st = db->faults()->Configure(RandomSchedule(&rng, false));
  if (!st.ok()) {
    std::fprintf(stderr, "[%s] bad schedule: %s\n", q.name,
                 st.ToString().c_str());
    ++tally->errors;
    return false;
  }

  Result<QueryResult> res = db->ExecuteWith(q.sql(), opts);
  bool resumed = false, fell_back = false;
  if (!res.ok() && res.status().code() != StatusCode::kCrashed) {
    std::fprintf(stderr, "[%s] non-crash failure under crash schedule: %s\n",
                 q.name, res.status().ToString().c_str());
    ++tally->errors;
    return false;
  }
  if (!res.ok()) {
    ++tally->crashed;
    // Restart loop: each attempt may itself be chaos'd; the last is clean
    // so the trial always terminates.
    const int kMaxRestarts = 6;
    for (int attempt = 0; attempt < kMaxRestarts; ++attempt) {
      db->faults()->Reset();  // armed schedules die with the "process"
      const bool chaos_recovery =
          attempt < kMaxRestarts - 1 && rng.NextDouble() < 0.3;
      if (chaos_recovery)
        (void)db->faults()->Configure(RandomSchedule(&rng, true));
      res = db->Recover(q.sql(), opts);
      if (res.ok()) break;
      if (res.status().code() != StatusCode::kCrashed) {
        std::fprintf(stderr, "[%s] recovery failed (not a crash): %s\n",
                     q.name, res.status().ToString().c_str());
        ++tally->errors;
        return false;
      }
      ++tally->re_crashed;
    }
    if (!res.ok()) {
      std::fprintf(stderr, "[%s] recovery never converged\n", q.name);
      ++tally->errors;
      return false;
    }
    for (const RecoveryEvent& ev : res->report.trace.recoveries)
      resumed = resumed || ev.resumed;
    fell_back = !res->report.trace.recovery_fallbacks.empty();
    if (resumed) ++tally->resumed;
    if (fell_back) ++tally->fallbacks;
  }
  db->faults()->Reset();

  if (Canon(res->rows) != oracle) {
    std::fprintf(stderr, "[%s seed=%llu batch=%zu] ROW MISMATCH vs oracle\n",
                 q.name, static_cast<unsigned long long>(seed), batch_size);
    ++tally->mismatches;
    return false;
  }
  bool leaked = false;
  for (int i = 1; i <= 16; ++i)
    leaked = leaked || db->catalog()->Exists("__temp" + std::to_string(i));
  if (leaked || db->disk()->live_pages() != baseline_pages ||
      !db->journal()->empty()) {
    std::fprintf(stderr,
                 "[%s seed=%llu batch=%zu] LEAK: temps=%d pages=%zu/%zu "
                 "journal=%zu\n",
                 q.name, static_cast<unsigned long long>(seed), batch_size,
                 leaked ? 1 : 0, db->disk()->live_pages(), baseline_pages,
                 db->journal()->record_count());
    ++tally->errors;
    return false;
  }
  if (Verbose)
    std::printf("[%s seed=%llu batch=%zu] ok%s%s\n", q.name,
                static_cast<unsigned long long>(seed), batch_size,
                resumed ? " (resumed)" : "", fell_back ? " (fallback)" : "");
  return true;
}

}  // namespace
}  // namespace reoptdb

int main(int argc, char** argv) {
  using namespace reoptdb;
  uint64_t seed = 42;
  int trials = 8;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--trials") && i + 1 < argc) {
      trials = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--verbose")) {
      Verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: chaos_runner [--seed N] [--trials N] [--verbose]\n");
      return 2;
    }
  }

  bool ok = true;
  for (size_t batch_size : {size_t{1}, size_t{1024}}) {
    for (const Tier1Query& q : kQueries) {
      // Crash-free oracle, once per (query, mode).
      std::unique_ptr<Database> oracle_db = MakeDb();
      Result<QueryResult> oracle =
          oracle_db->ExecuteWith(q.sql(), EagerGate(batch_size));
      if (!oracle.ok()) {
        std::fprintf(stderr, "[%s] oracle failed: %s\n", q.name,
                     oracle.status().ToString().c_str());
        return 2;
      }
      const std::vector<std::string> reference = Canon(oracle->rows);

      Tally tally;
      for (int t = 0; t < trials; ++t) {
        // Per-trial seed mixes the CLI seed, query, mode, and ordinal so
        // every trial is independent yet exactly reproducible.
        uint64_t trial_seed = seed * 1000003ULL + batch_size * 997ULL +
                              static_cast<uint64_t>(&q - kQueries) * 131ULL +
                              static_cast<uint64_t>(t);
        ok = RunTrial(q, batch_size, trial_seed, reference, &tally) && ok;
      }
      std::printf(
          "%-4s batch=%-4zu trials=%d crashed=%d re-crashed=%d resumed=%d "
          "fallbacks=%d mismatches=%d errors=%d\n",
          q.name, batch_size, tally.trials, tally.crashed, tally.re_crashed,
          tally.resumed, tally.fallbacks, tally.mismatches, tally.errors);
    }
  }
  std::printf(ok ? "chaos: all trials converged on the oracle\n"
                 : "chaos: FAILURES above\n");
  return ok ? 0 : 1;
}
